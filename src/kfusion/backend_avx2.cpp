/**
 * @file
 * AVX2 implementations of the four hot kernels, behind the "simd"
 * backend. This is the only translation unit compiled with -mavx2;
 * everything else in the tree stays at the baseline ISA, and the
 * registry only dispatches here after a runtime CPUID check.
 *
 * Bit-exactness strategy (the parity contract in
 * docs/ARCHITECTURE.md): every vector lane replays the scalar
 * kernel's operation sequence for exactly one work item, in the same
 * order, with the same rounding — no FMA contraction (the baseline
 * build has none, and no FMA intrinsics are used), no reassociation,
 * and compare/min semantics chosen to match the scalar expressions
 * including their NaN behavior. The ICP reduction is vectorized
 * across its accumulator slots rather than across pixels, so each
 * slot sees the identical sequential sum.
 */

#include "kfusion/backend_simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "math/aabb.hpp"

namespace slambench::kfusion::detail {

using math::Vec3f;

bool
avx2CompiledIn()
{
    return true;
}

namespace {

/**
 * Trilinear TSDF sample of up to 8 world points (one per lane), each
 * lane replaying TsdfVolume::sampleTrilinear exactly.
 *
 * @param voxels Volume storage viewed as interleaved {tsdf, weight}
 *               float pairs.
 * @param res Volume resolution (voxels per edge).
 * @param origin Volume origin, broadcast per component.
 * @param inv_vs The scalar kernel's single-rounded 1 / voxelSize().
 * @param px,py,pz Sample positions, one point per lane.
 * @param active Lanes to sample (sign-bit mask); inactive lanes
 *               perform no memory access and return 1.0f/invalid.
 * @param[out] valid_out Per-lane validity (bounds && any observed).
 * @return per-lane interpolated TSDF (1.0f when invalid).
 */
__m256
sampleTrilinear8(const float *voxels, int res, const Vec3f &origin,
                 float inv_vs, __m256 px, __m256 py, __m256 pz,
                 __m256 active, __m256 &valid_out)
{
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 s = _mm256_set1_ps(inv_vs);

    // local = (p - origin) * (1 / vs) - 0.5, per component.
    const __m256 lx = _mm256_sub_ps(
        _mm256_mul_ps(_mm256_sub_ps(px, _mm256_set1_ps(origin.x)), s),
        half);
    const __m256 ly = _mm256_sub_ps(
        _mm256_mul_ps(_mm256_sub_ps(py, _mm256_set1_ps(origin.y)), s),
        half);
    const __m256 lz = _mm256_sub_ps(
        _mm256_mul_ps(_mm256_sub_ps(pz, _mm256_set1_ps(origin.z)), s),
        half);

    // x0 = (int)floor(local.x); out-of-range converts saturate to
    // INT_MIN and fail the bounds check below, like the scalar path.
    const __m256 fx0 = _mm256_floor_ps(lx);
    const __m256 fy0 = _mm256_floor_ps(ly);
    const __m256 fz0 = _mm256_floor_ps(lz);
    const __m256i x0 = _mm256_cvttps_epi32(fx0);
    const __m256i y0 = _mm256_cvttps_epi32(fy0);
    const __m256i z0 = _mm256_cvttps_epi32(fz0);

    // Valid iff 0 <= c0 and c0 + 1 < res on every axis.
    const __m256i minus1 = _mm256_set1_epi32(-1);
    const __m256i resm1 = _mm256_set1_epi32(res - 1);
    __m256i inb = _mm256_and_si256(
        _mm256_and_si256(_mm256_cmpgt_epi32(x0, minus1),
                         _mm256_cmpgt_epi32(y0, minus1)),
        _mm256_cmpgt_epi32(z0, minus1));
    inb = _mm256_and_si256(
        inb, _mm256_and_si256(
                 _mm256_and_si256(_mm256_cmpgt_epi32(resm1, x0),
                                  _mm256_cmpgt_epi32(resm1, y0)),
                 _mm256_cmpgt_epi32(resm1, z0)));
    const __m256 gather_mask =
        _mm256_and_ps(_mm256_castsi256_ps(inb), active);

    // Fractional offsets and the eight corner weights, exactly the
    // scalar expressions (int -> float conversion is exact here).
    const __m256 fx = _mm256_sub_ps(lx, _mm256_cvtepi32_ps(x0));
    const __m256 fy = _mm256_sub_ps(ly, _mm256_cvtepi32_ps(y0));
    const __m256 fz = _mm256_sub_ps(lz, _mm256_cvtepi32_ps(z0));
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 wx0 = _mm256_sub_ps(one, fx), wx1 = fx;
    const __m256 wy0 = _mm256_sub_ps(one, fy), wy1 = fy;
    const __m256 wz0 = _mm256_sub_ps(one, fz), wz1 = fz;

    // base = (x0 * res + y0) * res + z0, in voxels; the float pair
    // index is 2 * voxel index (max 2 * res^3 < 2^31 for res <= 1024).
    const __m256i resv = _mm256_set1_epi32(res);
    const __m256i base = _mm256_add_epi32(
        _mm256_mullo_epi32(
            _mm256_add_epi32(_mm256_mullo_epi32(x0, resv), y0), resv),
        z0);

    const int sy = res;
    const int sx = res * res;
    // Corner order 000,100,010,110,001,101,011,111 — the scalar
    // accumulation order.
    const int corner_off[8] = {0,      sx,     sy,     sx + sy,
                               1,      sx + 1, sy + 1, sx + sy + 1};
    const __m256 wxc[8] = {wx0, wx1, wx0, wx1, wx0, wx1, wx0, wx1};
    const __m256 wyc[8] = {wy0, wy0, wy1, wy1, wy0, wy0, wy1, wy1};
    const __m256 wzc[8] = {wz0, wz0, wz0, wz0, wz1, wz1, wz1, wz1};

    const __m256 zero = _mm256_setzero_ps();
    __m256 value = zero;
    __m256 observed = zero; // accumulated as a sign-bit mask
    for (int c = 0; c < 8; ++c) {
        const __m256i vidx = _mm256_slli_epi32(
            _mm256_add_epi32(base,
                             _mm256_set1_epi32(corner_off[c])),
            1);
        const __m256 tsdf = _mm256_mask_i32gather_ps(
            zero, voxels, vidx, gather_mask, 4);
        const __m256 weight = _mm256_mask_i32gather_ps(
            zero, voxels + 1, vidx, gather_mask, 4);
        observed = _mm256_or_ps(
            observed, _mm256_cmp_ps(weight, zero, _CMP_GT_OQ));
        // value += tsdf * wx * wy * wz with the scalar's left-to-
        // right products; starting from +0.0 preserves signed-zero
        // behavior of the scalar `value = 0.0f; value += ...`.
        value = _mm256_add_ps(
            value,
            _mm256_mul_ps(
                _mm256_mul_ps(_mm256_mul_ps(tsdf, wxc[c]), wyc[c]),
                wzc[c]));
    }

    valid_out = _mm256_and_ps(gather_mask, observed);
    return _mm256_blendv_ps(one, value, valid_out);
}

/** @return lane l of a float vector. */
float
lane(__m256 v, int l)
{
    alignas(32) float out[8];
    _mm256_store_ps(out, v);
    return out[l];
}

/** @return lane l of an int vector. */
int
lanei(__m256i v, int l)
{
    alignas(32) int out[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(out), v);
    return out[l];
}

} // namespace

void
integrateColumnAvx2(const IntegrateContext &ctx, Voxel *column,
                    int z_begin, int z_end, Vec3f pos)
{
    const __m256 fx = _mm256_set1_ps(ctx.intrinsics.fx);
    const __m256 fy = _mm256_set1_ps(ctx.intrinsics.fy);
    const __m256 cx = _mm256_set1_ps(ctx.intrinsics.cx);
    const __m256 cy = _mm256_set1_ps(ctx.intrinsics.cy);
    const __m256 zmin = _mm256_set1_ps(0.001f);
    const __m256 zero = _mm256_setzero_ps();
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 neg_mu = _mm256_set1_ps(-ctx.mu);
    const __m256 inv_mu = _mm256_set1_ps(ctx.invMu);
    const __m256 max_weight = _mm256_set1_ps(ctx.maxWeight);
    const __m256i widthv =
        _mm256_set1_epi32(static_cast<int>(ctx.width));
    const __m256i heightv =
        _mm256_set1_epi32(static_cast<int>(ctx.height));
    const __m256i minus1 = _mm256_set1_epi32(-1);

    int z = z_begin;
    for (; z_end - z >= 8; z += 8) {
        // Replay the scalar `pos += step` sweep serially so every
        // lane sees the bit-identical accumulated position.
        alignas(32) float posx[8], posy[8], posz[8];
        for (int l = 0; l < 8; ++l) {
            posx[l] = pos.x;
            posy[l] = pos.y;
            posz[l] = pos.z;
            pos += ctx.step;
        }
        const __m256 pxv = _mm256_load_ps(posx);
        const __m256 pyv = _mm256_load_ps(posy);
        const __m256 pzv = _mm256_load_ps(posz);

        // keep: !(pos.z <= 0.001f) — NLE matches the scalar branch
        // for NaN too.
        __m256 keep = _mm256_cmp_ps(pzv, zmin, _CMP_NLE_UQ);

        // pix = (fx * p.x / p.z + cx, fy * p.y / p.z + cy), truncated
        // toward zero exactly like static_cast<int>.
        const __m256i ipx = _mm256_cvttps_epi32(_mm256_add_ps(
            _mm256_div_ps(_mm256_mul_ps(fx, pxv), pzv), cx));
        const __m256i ipy = _mm256_cvttps_epi32(_mm256_add_ps(
            _mm256_div_ps(_mm256_mul_ps(fy, pyv), pzv), cy));

        const __m256i inb = _mm256_and_si256(
            _mm256_and_si256(_mm256_cmpgt_epi32(ipx, minus1),
                             _mm256_cmpgt_epi32(ipy, minus1)),
            _mm256_and_si256(_mm256_cmpgt_epi32(widthv, ipx),
                             _mm256_cmpgt_epi32(heightv, ipy)));
        keep = _mm256_and_ps(keep, _mm256_castsi256_ps(inb));

        const __m256i pix_idx = _mm256_add_epi32(
            _mm256_mullo_epi32(ipy, widthv), ipx);
        const __m256 measured = _mm256_mask_i32gather_ps(
            zero, ctx.depth, pix_idx, keep, 4);
        // keep: !(measured <= 0).
        keep = _mm256_and_ps(
            keep, _mm256_cmp_ps(measured, zero, _CMP_NLE_UQ));

        const __m256 lam = _mm256_mask_i32gather_ps(
            zero, ctx.lambda, pix_idx, keep, 4);
        const __m256 sdf =
            _mm256_mul_ps(_mm256_sub_ps(measured, pzv), lam);
        // keep: !(sdf < -mu).
        keep = _mm256_and_ps(
            keep, _mm256_cmp_ps(sdf, neg_mu, _CMP_NLT_UQ));
        if (_mm256_testz_ps(keep, keep))
            continue;

        // tsdf = min(1.0f, sdf / mu); min(x, 1) matches std::min's
        // operand order (NaN and equal cases included).
        const __m256 tsdf =
            _mm256_min_ps(_mm256_mul_ps(sdf, inv_mu), one);

        // Load 8 interleaved {tsdf, weight} voxels and deinterleave.
        const float *vf = reinterpret_cast<const float *>(column + z);
        const __m256 v01 = _mm256_loadu_ps(vf);
        const __m256 v23 = _mm256_loadu_ps(vf + 8);
        const __m256 tmix = _mm256_shuffle_ps(v01, v23,
                                              _MM_SHUFFLE(2, 0, 2, 0));
        const __m256 wmix = _mm256_shuffle_ps(v01, v23,
                                              _MM_SHUFFLE(3, 1, 3, 1));
        const __m256 vt = _mm256_castpd_ps(_mm256_permute4x64_pd(
            _mm256_castps_pd(tmix), _MM_SHUFFLE(3, 1, 2, 0)));
        const __m256 vw = _mm256_castpd_ps(_mm256_permute4x64_pd(
            _mm256_castps_pd(wmix), _MM_SHUFFLE(3, 1, 2, 0)));

        // v.tsdf = (v.tsdf * w + tsdf) / (w + 1);
        // v.weight = min(w + 1, max_weight).
        const __m256 wp1 = _mm256_add_ps(vw, one);
        const __m256 nt = _mm256_div_ps(
            _mm256_add_ps(_mm256_mul_ps(vt, vw), tsdf), wp1);
        const __m256 nw = _mm256_min_ps(wp1, max_weight);

        const __m256 bt = _mm256_blendv_ps(vt, nt, keep);
        const __m256 bw = _mm256_blendv_ps(vw, nw, keep);

        // Re-interleave (the 64-bit permute is an involution) and
        // store; skipped lanes write back their original bytes.
        const __m256 tp = _mm256_castpd_ps(_mm256_permute4x64_pd(
            _mm256_castps_pd(bt), _MM_SHUFFLE(3, 1, 2, 0)));
        const __m256 wp = _mm256_castpd_ps(_mm256_permute4x64_pd(
            _mm256_castps_pd(bw), _MM_SHUFFLE(3, 1, 2, 0)));
        float *out = reinterpret_cast<float *>(column + z);
        _mm256_storeu_ps(out, _mm256_unpacklo_ps(tp, wp));
        _mm256_storeu_ps(out + 8, _mm256_unpackhi_ps(tp, wp));
    }

    // Scalar tail, byte-for-byte the reference loop.
    for (; z < z_end; ++z, pos += ctx.step) {
        if (pos.z <= 0.001f)
            continue;
        const math::Vec2f pix = ctx.intrinsics.project(pos);
        const int px = static_cast<int>(pix.x);
        const int py = static_cast<int>(pix.y);
        if (px < 0 || py < 0 || px >= static_cast<int>(ctx.width) ||
            py >= static_cast<int>(ctx.height))
            continue;
        const float measured =
            ctx.depth[static_cast<size_t>(py) * ctx.width +
                      static_cast<size_t>(px)];
        if (measured <= 0.0f)
            continue;
        const float lambda =
            ctx.lambda[static_cast<size_t>(py) * ctx.width +
                       static_cast<size_t>(px)];
        const float sdf = (measured - pos.z) * lambda;
        if (sdf < -ctx.mu)
            continue;
        const float tsdf = std::min(1.0f, sdf * ctx.invMu);
        Voxel &v = column[z];
        const float weight = v.weight;
        v.tsdf = (v.tsdf * weight + tsdf) / (weight + 1.0f);
        v.weight = std::min(weight + 1.0f, ctx.maxWeight);
    }
}

Vec3f
gradAvx2(const TsdfVolume &volume, const Vec3f &p)
{
    const float step = volume.voxelSize();
    const float inv_vs = 1.0f / volume.voxelSize();
    const float *voxels =
        reinterpret_cast<const float *>(&volume.at(0, 0, 0));

    // Six central-difference sample points in lanes 0..5, ordered
    // xp, xm, yp, ym, zp, zm like the scalar kernel.
    const __m256 px = _mm256_setr_ps(p.x + step, p.x - step, p.x, p.x,
                                     p.x, p.x, p.x, p.x);
    const __m256 py = _mm256_setr_ps(p.y, p.y, p.y + step, p.y - step,
                                     p.y, p.y, p.y, p.y);
    const __m256 pz = _mm256_setr_ps(p.z, p.z, p.z, p.z, p.z + step,
                                     p.z - step, p.z, p.z);
    const __m256 active = _mm256_castsi256_ps(_mm256_setr_epi32(
        -1, -1, -1, -1, -1, -1, 0, 0));

    __m256 valid;
    const __m256 v = sampleTrilinear8(voxels, volume.resolution(),
                                      volume.origin(), inv_vs, px, py,
                                      pz, active, valid);
    const int ok = _mm256_movemask_ps(valid);

    // Per-axis early-outs in the scalar order: both samples of an
    // axis invalid -> zero gradient.
    if ((ok & 0x03) == 0)
        return Vec3f{};
    if ((ok & 0x0c) == 0)
        return Vec3f{};
    if ((ok & 0x30) == 0)
        return Vec3f{};
    alignas(32) float s[8];
    _mm256_store_ps(s, v);
    return {s[0] - s[1], s[2] - s[3], s[4] - s[5]};
}

void
castRaysAvx2(const TsdfVolume &volume, const Vec3f &origin,
             const Vec3f *dirs, size_t count,
             const RaycastParams &params, RayHit *hits)
{
    const float inv_vs = 1.0f / volume.voxelSize();
    const float *voxels =
        reinterpret_cast<const float *>(&volume.at(0, 0, 0));
    const math::Aabb box{volume.origin(),
                         volume.origin() +
                             Vec3f::all(volume.size())};

    // Per-lane setup replays the scalar castRay prologue: AABB clip,
    // t/t_end clamping, and the miss-before-marching cases.
    alignas(32) float dx[8]{}, dy[8]{}, dz[8]{};
    alignas(32) float t0[8]{}, tend[8]{};
    alignas(32) int run0[8]{};
    for (size_t l = 0; l < count; ++l) {
        hits[l] = RayHit{};
        dx[l] = dirs[l].x;
        dy[l] = dirs[l].y;
        dz[l] = dirs[l].z;
        tend[l] = -1e30f; // keeps padded/missed lanes inactive
        float t_near, t_far;
        if (!math::intersectRayAabb(box, origin, dirs[l], t_near,
                                    t_far))
            continue;
        const float t = std::max(t_near, params.nearPlane);
        const float t_end = std::min(t_far, params.farPlane);
        if (t >= t_end)
            continue;
        t0[l] = t;
        tend[l] = t_end;
        run0[l] = -1;
    }

    __m256 t = _mm256_load_ps(t0);
    const __m256 t_end = _mm256_load_ps(tend);
    __m256 running = _mm256_castsi256_ps(_mm256_load_si256(
        reinterpret_cast<const __m256i *>(run0)));
    if (_mm256_testz_ps(running, running))
        return;

    const __m256 ox = _mm256_set1_ps(origin.x);
    const __m256 oy = _mm256_set1_ps(origin.y);
    const __m256 oz = _mm256_set1_ps(origin.z);
    const __m256 dxv = _mm256_load_ps(dx);
    const __m256 dyv = _mm256_load_ps(dy);
    const __m256 dzv = _mm256_load_ps(dz);
    const __m256 large = _mm256_set1_ps(params.largeStep);
    const __m256 fine = _mm256_set1_ps(params.step);
    const __m256 zero = _mm256_setzero_ps();
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 band = _mm256_set1_ps(0.8f);
    const __m256 eps = _mm256_set1_ps(1e-12f);
    const int res = volume.resolution();
    const Vec3f &vorigin = volume.origin();

    const auto point_at = [&](__m256 tv, __m256 &px, __m256 &py,
                              __m256 &pz) {
        // origin + dir * t, per component: mul then add.
        px = _mm256_add_ps(ox, _mm256_mul_ps(dxv, tv));
        py = _mm256_add_ps(oy, _mm256_mul_ps(dyv, tv));
        pz = _mm256_add_ps(oz, _mm256_mul_ps(dzv, tv));
    };

    // Initial sample: f_t = interp(origin + dir * t); lanes that
    // start inside the surface (valid && f_t < 0) miss immediately.
    __m256 px, py, pz, valid;
    point_at(t, px, py, pz);
    __m256 f_t = sampleTrilinear8(voxels, res, vorigin, inv_vs, px,
                                  py, pz, running, valid);
    running = _mm256_andnot_ps(
        _mm256_and_ps(valid, _mm256_cmp_ps(f_t, zero, _CMP_LT_OQ)),
        running);

    __m256 stepsize = large;
    __m256i steps = _mm256_setzero_si256();
    __m256 found = zero;
    __m256 hitx = zero, hity = zero, hitz = zero;

    while (true) {
        // Loop condition per lane: t < t_end; lanes failing it leave
        // the march as misses.
        running = _mm256_and_ps(
            running, _mm256_cmp_ps(t, t_end, _CMP_LT_OQ));
        if (_mm256_testz_ps(running, running))
            break;

        // ++steps; t += stepsize (active lanes only).
        steps = _mm256_sub_epi32(steps,
                                 _mm256_castps_si256(running));
        t = _mm256_blendv_ps(t, _mm256_add_ps(t, stepsize), running);

        point_at(t, px, py, pz);
        const __m256 f_tt = sampleTrilinear8(
            voxels, res, vorigin, inv_vs, px, py, pz, running, valid);

        // Unknown space: f_t = 1, back to the coarse step, continue.
        const __m256 invalid = _mm256_andnot_ps(valid, running);
        f_t = _mm256_blendv_ps(f_t, one, invalid);
        stepsize = _mm256_blendv_ps(stepsize, large, invalid);

        const __m256 sampled = _mm256_and_ps(running, valid);
        // Zero crossing: linear refinement between samples, exactly
        // the scalar t + stepsize * f_tt / denom operation order.
        const __m256 crossing = _mm256_and_ps(
            sampled, _mm256_cmp_ps(f_tt, zero, _CMP_LT_OQ));
        if (!_mm256_testz_ps(crossing, crossing)) {
            const __m256 denom = _mm256_sub_ps(f_t, f_tt);
            const __m256 refine =
                _mm256_cmp_ps(denom, eps, _CMP_GT_OQ);
            const __m256 t_star = _mm256_blendv_ps(
                t,
                _mm256_add_ps(
                    t, _mm256_div_ps(_mm256_mul_ps(stepsize, f_tt),
                                     denom)),
                refine);
            __m256 hx, hy, hz;
            point_at(t_star, hx, hy, hz);
            hitx = _mm256_blendv_ps(hitx, hx, crossing);
            hity = _mm256_blendv_ps(hity, hy, crossing);
            hitz = _mm256_blendv_ps(hitz, hz, crossing);
            found = _mm256_or_ps(found, crossing);
            running = _mm256_andnot_ps(crossing, running);
        }

        // Near the surface: drop to the fine step.
        const __m256 marching = _mm256_andnot_ps(crossing, sampled);
        const __m256 next_step = _mm256_blendv_ps(
            large, fine, _mm256_cmp_ps(f_tt, band, _CMP_LT_OQ));
        stepsize = _mm256_blendv_ps(stepsize, next_step, marching);
        f_t = _mm256_blendv_ps(f_t, f_tt, marching);
    }

    const int found_bits = _mm256_movemask_ps(found);
    for (size_t l = 0; l < count; ++l) {
        hits[l].steps = lanei(steps, static_cast<int>(l));
        if (found_bits & (1 << l)) {
            hits[l].found = true;
            hits[l].hit = {lane(hitx, static_cast<int>(l)),
                           lane(hity, static_cast<int>(l)),
                           lane(hitz, static_cast<int>(l))};
        }
    }
}

ReductionResult
reduceRangeAvx2(const support::Image<TrackData> &track_data,
                size_t begin, size_t end)
{
    // Slot-per-lane: the 6x8 products jac[r] * {j0..j5, e, 0} cover
    // the full J^T J (row-major) and J^T e in 12 register-resident
    // accumulators. Each slot accumulates sequentially over pixels,
    // so no sum is reassociated; float x float products are exact in
    // double, making every slot bit-identical to the scalar kernel.
    __m256d acc_lo[6], acc_hi[6];
    for (int r = 0; r < 6; ++r) {
        acc_lo[r] = _mm256_setzero_pd();
        acc_hi[r] = _mm256_setzero_pd();
    }
    double error_sq = 0.0;
    size_t valid_count = 0;

    for (size_t i = begin; i < end; ++i) {
        const TrackData &row = track_data[i];
        if (row.result != TrackResult::Ok)
            continue;
        ++valid_count;
        error_sq += static_cast<double>(row.error) * row.error;
        const __m256d dlo =
            _mm256_cvtps_pd(_mm_loadu_ps(row.jacobian.data()));
        const __m256d dhi = _mm256_cvtps_pd(
            _mm_setr_ps(row.jacobian[4], row.jacobian[5], row.error,
                        0.0f));
        for (int r = 0; r < 6; ++r) {
            const __m256d jr = _mm256_set1_pd(
                static_cast<double>(row.jacobian[r]));
            acc_lo[r] = _mm256_add_pd(acc_lo[r],
                                      _mm256_mul_pd(jr, dlo));
            acc_hi[r] = _mm256_add_pd(acc_hi[r],
                                      _mm256_mul_pd(jr, dhi));
        }
    }

    ReductionResult out;
    out.errorSq = error_sq;
    out.validCount = valid_count;
    size_t tslot = 0;
    for (int r = 0; r < 6; ++r) {
        alignas(32) double full[8];
        _mm256_store_pd(full, acc_lo[r]);
        _mm256_store_pd(full + 4, acc_hi[r]);
        for (int c = r; c < 6; ++c, ++tslot)
            out.jtj[tslot] = full[c];
        out.jte[static_cast<size_t>(r)] = full[6];
    }
    return out;
}

} // namespace slambench::kfusion::detail

#else // !defined(__AVX2__)

#include "support/logging.hpp"

namespace slambench::kfusion::detail {

// Fallback stubs: the registry never dispatches here unless
// avx2CompiledIn() returned true, so these only exist to keep the
// build linking when the compiler has no -mavx2.

bool
avx2CompiledIn()
{
    return false;
}

void
integrateColumnAvx2(const IntegrateContext &, Voxel *, int, int,
                    math::Vec3f)
{
    support::fatal("integrateColumnAvx2: AVX2 not compiled in");
}

math::Vec3f
gradAvx2(const TsdfVolume &, const math::Vec3f &)
{
    support::fatal("gradAvx2: AVX2 not compiled in");
}

void
castRaysAvx2(const TsdfVolume &, const math::Vec3f &,
             const math::Vec3f *, size_t, const RaycastParams &,
             RayHit *)
{
    support::fatal("castRaysAvx2: AVX2 not compiled in");
}

ReductionResult
reduceRangeAvx2(const support::Image<TrackData> &, size_t, size_t)
{
    support::fatal("reduceRangeAvx2: AVX2 not compiled in");
}

} // namespace slambench::kfusion::detail

#endif // defined(__AVX2__)
