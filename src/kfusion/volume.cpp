#include "kfusion/volume.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "support/trace.hpp"

namespace slambench::kfusion {

TsdfVolume::TsdfVolume(int resolution, float size_m, const Vec3f &origin)
    : resolution_(resolution), size_(size_m), origin_(origin)
{
    if (resolution < 8)
        support::fatal("TsdfVolume: resolution must be >= 8");
    if (!(size_m > 0.0f))
        support::fatal("TsdfVolume: size must be positive");
    voxels_.assign(static_cast<size_t>(resolution) * resolution *
                       resolution,
                   Voxel{});
}

void
TsdfVolume::reset()
{
    std::fill(voxels_.begin(), voxels_.end(), Voxel{});
}

bool
TsdfVolume::contains(const Vec3f &p) const
{
    const Vec3f local = p - origin_;
    return local.x >= 0.0f && local.y >= 0.0f && local.z >= 0.0f &&
           local.x < size_ && local.y < size_ && local.z < size_;
}

float
TsdfVolume::interp(const Vec3f &p, bool &valid) const
{
    const float vs = voxelSize();
    // Shift by half a voxel so samples are taken at voxel centers.
    const Vec3f local = (p - origin_) * (1.0f / vs) -
                        Vec3f{0.5f, 0.5f, 0.5f};
    const int x0 = static_cast<int>(std::floor(local.x));
    const int y0 = static_cast<int>(std::floor(local.y));
    const int z0 = static_cast<int>(std::floor(local.z));
    if (x0 < 0 || y0 < 0 || z0 < 0 || x0 + 1 >= resolution_ ||
        y0 + 1 >= resolution_ || z0 + 1 >= resolution_) {
        valid = false;
        return 1.0f;
    }
    const float fx = local.x - x0;
    const float fy = local.y - y0;
    const float fz = local.z - z0;

    // Unobserved voxels contribute their initial value (+1, free
    // space), exactly as the original KinectFusion interpolation
    // does; the sample is only invalid when *nothing* under the
    // stencil has ever been observed.
    float value = 0.0f;
    bool any_observed = false;
    for (int dz = 0; dz < 2; ++dz) {
        for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
                const Voxel &v = at(x0 + dx, y0 + dy, z0 + dz);
                any_observed |= v.weight > 0.0f;
                const float wx = dx ? fx : 1.0f - fx;
                const float wy = dy ? fy : 1.0f - fy;
                const float wz = dz ? fz : 1.0f - fz;
                value += v.tsdf * wx * wy * wz;
            }
        }
    }
    valid = any_observed;
    return any_observed ? value : 1.0f;
}

Vec3f
TsdfVolume::grad(const Vec3f &p) const
{
    const float step = voxelSize();
    // Each central difference needs at least one of its two samples
    // observed; unobserved samples read as +1 (free space), matching
    // the interpolation convention above.
    bool ok_p, ok_m;
    const float xp = interp({p.x + step, p.y, p.z}, ok_p);
    const float xm = interp({p.x - step, p.y, p.z}, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float yp = interp({p.x, p.y + step, p.z}, ok_p);
    const float ym = interp({p.x, p.y - step, p.z}, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float zp = interp({p.x, p.y, p.z + step}, ok_p);
    const float zm = interp({p.x, p.y, p.z - step}, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    return {xp - xm, yp - ym, zp - zm};
}

void
TsdfVolume::integrate(const support::Image<float> &depth,
                      const CameraIntrinsics &intrinsics,
                      const Mat4f &camera_to_world, float mu,
                      float max_weight, WorkCounts &counts,
                      support::ThreadPool *pool)
{
    KernelTimer timer(counts, KernelId::Integrate);
    const Mat4f world_to_camera = camera_to_world.rigidInverse();
    const float vs = voxelSize();
    const int res = resolution_;
    const float inv_mu = 1.0f / mu;

    // March along voxel columns: for fixed (x, y) the camera-frame
    // position is affine in z, so compute it incrementally (this is
    // the same strategy the CUDA kernel uses per thread).
    auto process_column_range = [&](size_t begin, size_t end) {
        for (size_t xy = begin; xy < end; ++xy) {
            const int x = static_cast<int>(xy) % res;
            const int y = static_cast<int>(xy) / res;
            Vec3f pos = world_to_camera.transformPoint(
                voxelCenter(x, y, 0));
            const Vec3f step =
                world_to_camera.transformDir({0.0f, 0.0f, vs});
            for (int z = 0; z < res; ++z, pos += step) {
                if (pos.z <= 0.001f)
                    continue;
                const math::Vec2f pix = intrinsics.project(pos);
                const int px = static_cast<int>(pix.x);
                const int py = static_cast<int>(pix.y);
                if (px < 0 || py < 0 ||
                    px >= static_cast<int>(depth.width()) ||
                    py >= static_cast<int>(depth.height()))
                    continue;
                const float measured =
                    depth(static_cast<size_t>(px),
                          static_cast<size_t>(py));
                if (measured <= 0.0f)
                    continue;
                // Scale the depth difference to distance along the
                // ray (KinectFusion's lambda correction).
                const float lambda = std::sqrt(
                    1.0f +
                    ((pix.x - intrinsics.cx) / intrinsics.fx) *
                        ((pix.x - intrinsics.cx) / intrinsics.fx) +
                    ((pix.y - intrinsics.cy) / intrinsics.fy) *
                        ((pix.y - intrinsics.cy) / intrinsics.fy));
                const float sdf = (measured - pos.z) * lambda;
                if (sdf < -mu)
                    continue; // occluded: behind the surface band
                const float tsdf =
                    std::min(1.0f, sdf * inv_mu);
                Voxel &v = at(x, y, z);
                const float w = v.weight;
                v.tsdf = (v.tsdf * w + tsdf) / (w + 1.0f);
                v.weight = std::min(w + 1.0f, max_weight);
            }
        }
    };

    const size_t columns = static_cast<size_t>(res) * res;
    if (pool) {
        pool->parallelForChunked(0, columns, process_column_range);
    } else {
        process_column_range(0, columns);
    }

    // Work unit: voxel-column steps (res^3 voxel visits).
    counts.addItems(KernelId::Integrate,
                    static_cast<double>(columns) * res);
    counts.addBytes(KernelId::Integrate,
                    static_cast<double>(columns) * res * 16.0);
    TRACE_COUNTER("integrate.voxels",
                  static_cast<double>(columns) * res);
}

} // namespace slambench::kfusion
