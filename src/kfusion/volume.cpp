#include "kfusion/volume.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "kfusion/backend.hpp"
#include "kfusion/integrate_cull.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace slambench::kfusion {

TsdfVolume::TsdfVolume(int resolution, float size_m, const Vec3f &origin)
    : resolution_(resolution), size_(size_m), origin_(origin)
{
    if (resolution < 8)
        support::fatal("TsdfVolume: resolution must be >= 8");
    if (!(size_m > 0.0f))
        support::fatal("TsdfVolume: size must be positive");
    voxels_.assign(static_cast<size_t>(resolution) * resolution *
                       resolution,
                   Voxel{});
}

void
TsdfVolume::reset()
{
    std::fill(voxels_.begin(), voxels_.end(), Voxel{});
}

bool
TsdfVolume::contains(const Vec3f &p) const
{
    const Vec3f local = p - origin_;
    return local.x >= 0.0f && local.y >= 0.0f && local.z >= 0.0f &&
           local.x < size_ && local.y < size_ && local.z < size_;
}

float
TsdfVolume::sampleTrilinear(float px, float py, float pz,
                            bool &valid) const
{
    const float vs = voxelSize();
    // Shift by half a voxel so samples are taken at voxel centers.
    const Vec3f local = (Vec3f{px, py, pz} - origin_) * (1.0f / vs) -
                        Vec3f{0.5f, 0.5f, 0.5f};
    const int x0 = static_cast<int>(std::floor(local.x));
    const int y0 = static_cast<int>(std::floor(local.y));
    const int z0 = static_cast<int>(std::floor(local.z));
    if (x0 < 0 || y0 < 0 || z0 < 0 || x0 + 1 >= resolution_ ||
        y0 + 1 >= resolution_ || z0 + 1 >= resolution_) {
        valid = false;
        return 1.0f;
    }
    const float fx = local.x - x0;
    const float fy = local.y - y0;
    const float fz = local.z - z0;
    const float wx0 = 1.0f - fx, wx1 = fx;
    const float wy0 = 1.0f - fy, wy1 = fy;
    const float wz0 = 1.0f - fz, wz1 = fz;

    // One base index; the stencil's seven neighbors are fixed offsets
    // in the z-major layout (+1 in z, +res in y, +res^2 in x).
    const size_t stride_y = static_cast<size_t>(resolution_);
    const size_t stride_x = stride_y * stride_y;
    const Voxel *base = voxels_.data() + index(x0, y0, z0);
    const Voxel &v000 = base[0];
    const Voxel &v100 = base[stride_x];
    const Voxel &v010 = base[stride_y];
    const Voxel &v110 = base[stride_x + stride_y];
    const Voxel &v001 = base[1];
    const Voxel &v101 = base[stride_x + 1];
    const Voxel &v011 = base[stride_y + 1];
    const Voxel &v111 = base[stride_x + stride_y + 1];

    // Unobserved voxels contribute their initial value (+1, free
    // space), exactly as the original KinectFusion interpolation
    // does; the sample is only invalid when *nothing* under the
    // stencil has ever been observed. The accumulation below keeps
    // the reference dz/dy/dx loop order so the result is bit-exact.
    const bool any_observed =
        v000.weight > 0.0f || v100.weight > 0.0f ||
        v010.weight > 0.0f || v110.weight > 0.0f ||
        v001.weight > 0.0f || v101.weight > 0.0f ||
        v011.weight > 0.0f || v111.weight > 0.0f;
    float value = 0.0f;
    value += v000.tsdf * wx0 * wy0 * wz0;
    value += v100.tsdf * wx1 * wy0 * wz0;
    value += v010.tsdf * wx0 * wy1 * wz0;
    value += v110.tsdf * wx1 * wy1 * wz0;
    value += v001.tsdf * wx0 * wy0 * wz1;
    value += v101.tsdf * wx1 * wy0 * wz1;
    value += v011.tsdf * wx0 * wy1 * wz1;
    value += v111.tsdf * wx1 * wy1 * wz1;
    valid = any_observed;
    return any_observed ? value : 1.0f;
}

float
TsdfVolume::interp(const Vec3f &p, bool &valid) const
{
    return sampleTrilinear(p.x, p.y, p.z, valid);
}

Vec3f
TsdfVolume::grad(const Vec3f &p) const
{
    const float step = voxelSize();
    // Each central difference needs at least one of its two samples
    // observed; unobserved samples read as +1 (free space), matching
    // the interpolation convention above. The floor boundaries of the
    // six sample points can differ, so each sample recomputes its own
    // base index — fusing means one pass, one call frame and six
    // base-index computations instead of 48 full index calculations.
    bool ok_p, ok_m;
    const float xp = sampleTrilinear(p.x + step, p.y, p.z, ok_p);
    const float xm = sampleTrilinear(p.x - step, p.y, p.z, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float yp = sampleTrilinear(p.x, p.y + step, p.z, ok_p);
    const float ym = sampleTrilinear(p.x, p.y - step, p.z, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float zp = sampleTrilinear(p.x, p.y, p.z + step, ok_p);
    const float zm = sampleTrilinear(p.x, p.y, p.z - step, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    return {xp - xm, yp - ym, zp - zm};
}

Vec3f
TsdfVolume::gradReference(const Vec3f &p) const
{
    const float step = voxelSize();
    bool ok_p, ok_m;
    const float xp = interp({p.x + step, p.y, p.z}, ok_p);
    const float xm = interp({p.x - step, p.y, p.z}, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float yp = interp({p.x, p.y + step, p.z}, ok_p);
    const float ym = interp({p.x, p.y - step, p.z}, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float zp = interp({p.x, p.y, p.z + step}, ok_p);
    const float zm = interp({p.x, p.y, p.z - step}, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    return {xp - xm, yp - ym, zp - zm};
}

void
TsdfVolume::integrate(const support::Image<float> &depth,
                      const CameraIntrinsics &intrinsics,
                      const Mat4f &camera_to_world, float mu,
                      float max_weight, WorkCounts &counts,
                      support::ThreadPool *pool)
{
    integrateImpl(depth, intrinsics, camera_to_world, mu, max_weight,
                  counts, pool, /*cull=*/true,
                  backend_ ? *backend_ : scalarKernelBackend());
}

void
TsdfVolume::integrateDense(const support::Image<float> &depth,
                           const CameraIntrinsics &intrinsics,
                           const Mat4f &camera_to_world, float mu,
                           float max_weight, WorkCounts &counts,
                           support::ThreadPool *pool)
{
    // Always the scalar backend: the dense sweep is the numerical
    // reference the parity tests compare every backend against.
    integrateImpl(depth, intrinsics, camera_to_world, mu, max_weight,
                  counts, pool, /*cull=*/false, scalarKernelBackend());
}

void
TsdfVolume::integrateImpl(const support::Image<float> &depth,
                          const CameraIntrinsics &intrinsics,
                          const Mat4f &camera_to_world, float mu,
                          float max_weight, WorkCounts &counts,
                          support::ThreadPool *pool, bool cull,
                          const KernelBackend &backend)
{
    KernelTimer timer(counts, KernelId::Integrate);
    const Mat4f world_to_camera = camera_to_world.rigidInverse();
    const float vs = voxelSize();
    const int res = resolution_;
    const size_t width = depth.width();
    const size_t height = depth.height();
    const float *lambda_table =
        lambda_.tableFor(intrinsics, width, height);

    // The camera-frame z-step is identical for every column: hoisted
    // out of the per-column loop.
    const Vec3f step = world_to_camera.transformDir({0.0f, 0.0f, vs});

    // Loop invariants of the per-voxel fusion body, shared by every
    // column this call visits (the backend hook's context).
    IntegrateContext ctx;
    ctx.depth = depth.data();
    ctx.width = width;
    ctx.height = height;
    ctx.lambda = lambda_table;
    ctx.intrinsics = intrinsics;
    ctx.mu = mu;
    ctx.invMu = 1.0f / mu;
    ctx.maxWeight = max_weight;
    ctx.step = step;
    const double slack =
        cull ? accumulationSlack(world_to_camera, origin_, size_, res)
             : 0.0;

    // Visited/culled voxels, accumulated per chunk then folded in
    // with integer atomics so the totals are deterministic under any
    // parallel schedule.
    std::atomic<long long> visited_total{0};
    std::atomic<long long> culled_total{0};

    // March along voxel columns: for fixed (x, y) the camera-frame
    // position is affine in z, so compute it incrementally (this is
    // the same strategy the CUDA kernel uses per thread). In the
    // z-major layout the column is contiguous in memory.
    auto process_column_range = [&](size_t begin, size_t end) {
        long long visited = 0;
        long long culled = 0;
        for (size_t xy = begin; xy < end; ++xy) {
            const int x = static_cast<int>(xy) % res;
            const int y = static_cast<int>(xy) / res;
            Vec3f pos = world_to_camera.transformPoint(
                voxelCenter(x, y, 0));
            int z_begin = 0;
            int z_end = res;
            if (cull) {
                const ZInterval zi = cullColumn(
                    pos, step, intrinsics, width, height, res, slack);
                z_begin = zi.begin;
                z_end = zi.end;
            }
            culled += res - (z_end - z_begin);
            if (z_begin >= z_end)
                continue;
            visited += z_end - z_begin;
            // Fast-forward to z_begin by replaying the accumulation
            // the dense sweep performs, so every visited voxel sees a
            // bit-identical position.
            for (int z = 0; z < z_begin; ++z)
                pos += step;
            Voxel *column = voxels_.data() + index(x, y, 0);
            backend.integrateColumn(ctx, column, z_begin, z_end, pos);
        }
        visited_total.fetch_add(visited, std::memory_order_relaxed);
        culled_total.fetch_add(culled, std::memory_order_relaxed);
    };

    const size_t columns = static_cast<size_t>(res) * res;
    if (pool) {
        pool->parallelForChunked(0, columns, process_column_range);
    } else {
        process_column_range(0, columns);
    }

    const double visited =
        static_cast<double>(visited_total.load());
    const double culled = static_cast<double>(culled_total.load());

    // Work unit: voxel visits actually performed; culled voxels are
    // reported as skipped work so the naive workload (res^3) stays
    // reconstructible as items + skipped.
    counts.addItems(KernelId::Integrate, visited);
    counts.addSkipped(KernelId::Integrate, culled);
    counts.addBytes(KernelId::Integrate, visited * 16.0);

    namespace sm = support::metrics;
    static sm::Counter &visited_counter =
        sm::Registry::instance().counter("volume.integrate.visited");
    static sm::Counter &culled_counter =
        sm::Registry::instance().counter("volume.integrate.culled");
    visited_counter.add(static_cast<uint64_t>(visited_total.load()));
    culled_counter.add(static_cast<uint64_t>(culled_total.load()));
    TRACE_COUNTER("integrate.voxels", visited);
    TRACE_COUNTER("integrate.culled", culled);
}

} // namespace slambench::kfusion
