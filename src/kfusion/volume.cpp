#include "kfusion/volume.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "kfusion/backend.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace slambench::kfusion {

namespace {

/** Inclusive-begin / exclusive-end z index range of a voxel column. */
struct ZInterval
{
    int begin = 0;
    int end = 0;
};

/**
 * Intersect the real interval [lo, hi] with the half-space
 * {z : a + b*z > 0}; an empty result is signalled by lo > hi.
 */
void
restrictInterval(double a, double b, double &lo, double &hi)
{
    if (std::abs(b) < 1e-300) {
        if (a <= 0.0) {
            lo = 1.0;
            hi = 0.0;
        }
        return;
    }
    const double boundary = -a / b;
    if (b > 0.0)
        lo = std::max(lo, boundary);
    else
        hi = std::min(hi, boundary);
}

/**
 * Conservative z-range of the voxels in one column that the dense
 * integration sweep could possibly fuse.
 *
 * The camera-frame position along a column is affine in the z index,
 * pos(z) = p0 + z*step, so each keep-condition of the visit loop
 * (pos.z > 0, projected pixel inside the image) becomes a linear
 * half-space in z once multiplied through by pos.z > 0. The
 * inequalities are solved in double with a whole pixel of margin and
 * an absolute slack on every linear form sized to the worst-case
 * float drift of the incremental `pos += step` sweep (@p slack, an
 * upper bound on |accumulated - affine| per component), so culling
 * can only ever drop voxels the dense sweep provably skips.
 *
 * @param p0 Camera-frame position of the column's z = 0 voxel center.
 * @param step Camera-frame z step between voxel centers.
 * @param k Depth image intrinsics.
 * @param width Depth image width, pixels.
 * @param height Depth image height, pixels.
 * @param res Voxels per column.
 * @param slack Per-component accumulation drift bound, meters.
 */
ZInterval
cullColumn(const Vec3f &p0, const Vec3f &step,
           const CameraIntrinsics &k, size_t width, size_t height,
           int res, double slack)
{
    double lo = 0.0;
    double hi = static_cast<double>(res - 1);
    const double x0 = p0.x, y0 = p0.y, z0 = p0.z;
    const double sx = step.x, sy = step.y, sz = step.z;
    const double fx = k.fx, fy = k.fy, cx = k.cx, cy = k.cy;
    const double fw = static_cast<double>(width);
    const double fh = static_cast<double>(height);

    const auto keep = [&](double a, double b, double coeff_mag) {
        restrictInterval(a + coeff_mag * slack, b, lo, hi);
    };

    // pos.z > 0 (the loop's own bound is the stricter 0.001).
    keep(z0, sz, 1.0);
    // pix.x > -1 (int truncation keeps (-1, 0)); one pixel of margin:
    // fx*pos.x + (cx + 2)*pos.z > 0.
    keep(fx * x0 + (cx + 2.0) * z0, fx * sx + (cx + 2.0) * sz,
         std::abs(fx) + std::abs(cx + 2.0));
    // pix.x < width + 1:  (width + 1 - cx)*pos.z - fx*pos.x > 0.
    keep((fw + 1.0 - cx) * z0 - fx * x0,
         (fw + 1.0 - cx) * sz - fx * sx,
         std::abs(fw + 1.0 - cx) + std::abs(fx));
    // pix.y > -2 and pix.y < height + 1, as above.
    keep(fy * y0 + (cy + 2.0) * z0, fy * sy + (cy + 2.0) * sz,
         std::abs(fy) + std::abs(cy + 2.0));
    keep((fh + 1.0 - cy) * z0 - fy * y0,
         (fh + 1.0 - cy) * sz - fy * sy,
         std::abs(fh + 1.0 - cy) + std::abs(fy));

    if (lo > hi)
        return {};
    int z_begin = static_cast<int>(std::floor(lo)) - 2;
    int z_end = static_cast<int>(std::ceil(hi)) + 3;
    z_begin = std::max(z_begin, 0);
    z_end = std::min(z_end, res);
    if (z_begin >= z_end)
        return {};
    return {z_begin, z_end};
}

/**
 * Upper bound on the float drift |accumulated - affine| of the
 * incremental `pos += step` column sweep, per component.
 *
 * Every intermediate position lies in the camera-frame convex hull of
 * the volume's corners, so res additions each round at most an ulp of
 * the largest corner coordinate; an 8x safety factor covers the
 * voxel-center offset and the double-vs-real solve error.
 */
double
accumulationSlack(const Mat4f &world_to_camera, const Vec3f &origin,
                  float size, int res)
{
    double mag = 1.0;
    for (int corner = 0; corner < 8; ++corner) {
        const Vec3f c =
            origin + Vec3f{(corner & 1) ? size : 0.0f,
                           (corner & 2) ? size : 0.0f,
                           (corner & 4) ? size : 0.0f};
        const Vec3f pc = world_to_camera.transformPoint(c);
        mag = std::max({mag, std::abs(static_cast<double>(pc.x)),
                        std::abs(static_cast<double>(pc.y)),
                        std::abs(static_cast<double>(pc.z))});
    }
    return static_cast<double>(res) * mag * 1.2e-7 * 8.0;
}

} // namespace

TsdfVolume::TsdfVolume(int resolution, float size_m, const Vec3f &origin)
    : resolution_(resolution), size_(size_m), origin_(origin)
{
    if (resolution < 8)
        support::fatal("TsdfVolume: resolution must be >= 8");
    if (!(size_m > 0.0f))
        support::fatal("TsdfVolume: size must be positive");
    voxels_.assign(static_cast<size_t>(resolution) * resolution *
                       resolution,
                   Voxel{});
}

void
TsdfVolume::reset()
{
    std::fill(voxels_.begin(), voxels_.end(), Voxel{});
}

bool
TsdfVolume::contains(const Vec3f &p) const
{
    const Vec3f local = p - origin_;
    return local.x >= 0.0f && local.y >= 0.0f && local.z >= 0.0f &&
           local.x < size_ && local.y < size_ && local.z < size_;
}

float
TsdfVolume::sampleTrilinear(float px, float py, float pz,
                            bool &valid) const
{
    const float vs = voxelSize();
    // Shift by half a voxel so samples are taken at voxel centers.
    const Vec3f local = (Vec3f{px, py, pz} - origin_) * (1.0f / vs) -
                        Vec3f{0.5f, 0.5f, 0.5f};
    const int x0 = static_cast<int>(std::floor(local.x));
    const int y0 = static_cast<int>(std::floor(local.y));
    const int z0 = static_cast<int>(std::floor(local.z));
    if (x0 < 0 || y0 < 0 || z0 < 0 || x0 + 1 >= resolution_ ||
        y0 + 1 >= resolution_ || z0 + 1 >= resolution_) {
        valid = false;
        return 1.0f;
    }
    const float fx = local.x - x0;
    const float fy = local.y - y0;
    const float fz = local.z - z0;
    const float wx0 = 1.0f - fx, wx1 = fx;
    const float wy0 = 1.0f - fy, wy1 = fy;
    const float wz0 = 1.0f - fz, wz1 = fz;

    // One base index; the stencil's seven neighbors are fixed offsets
    // in the z-major layout (+1 in z, +res in y, +res^2 in x).
    const size_t stride_y = static_cast<size_t>(resolution_);
    const size_t stride_x = stride_y * stride_y;
    const Voxel *base = voxels_.data() + index(x0, y0, z0);
    const Voxel &v000 = base[0];
    const Voxel &v100 = base[stride_x];
    const Voxel &v010 = base[stride_y];
    const Voxel &v110 = base[stride_x + stride_y];
    const Voxel &v001 = base[1];
    const Voxel &v101 = base[stride_x + 1];
    const Voxel &v011 = base[stride_y + 1];
    const Voxel &v111 = base[stride_x + stride_y + 1];

    // Unobserved voxels contribute their initial value (+1, free
    // space), exactly as the original KinectFusion interpolation
    // does; the sample is only invalid when *nothing* under the
    // stencil has ever been observed. The accumulation below keeps
    // the reference dz/dy/dx loop order so the result is bit-exact.
    const bool any_observed =
        v000.weight > 0.0f || v100.weight > 0.0f ||
        v010.weight > 0.0f || v110.weight > 0.0f ||
        v001.weight > 0.0f || v101.weight > 0.0f ||
        v011.weight > 0.0f || v111.weight > 0.0f;
    float value = 0.0f;
    value += v000.tsdf * wx0 * wy0 * wz0;
    value += v100.tsdf * wx1 * wy0 * wz0;
    value += v010.tsdf * wx0 * wy1 * wz0;
    value += v110.tsdf * wx1 * wy1 * wz0;
    value += v001.tsdf * wx0 * wy0 * wz1;
    value += v101.tsdf * wx1 * wy0 * wz1;
    value += v011.tsdf * wx0 * wy1 * wz1;
    value += v111.tsdf * wx1 * wy1 * wz1;
    valid = any_observed;
    return any_observed ? value : 1.0f;
}

float
TsdfVolume::interp(const Vec3f &p, bool &valid) const
{
    return sampleTrilinear(p.x, p.y, p.z, valid);
}

Vec3f
TsdfVolume::grad(const Vec3f &p) const
{
    const float step = voxelSize();
    // Each central difference needs at least one of its two samples
    // observed; unobserved samples read as +1 (free space), matching
    // the interpolation convention above. The floor boundaries of the
    // six sample points can differ, so each sample recomputes its own
    // base index — fusing means one pass, one call frame and six
    // base-index computations instead of 48 full index calculations.
    bool ok_p, ok_m;
    const float xp = sampleTrilinear(p.x + step, p.y, p.z, ok_p);
    const float xm = sampleTrilinear(p.x - step, p.y, p.z, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float yp = sampleTrilinear(p.x, p.y + step, p.z, ok_p);
    const float ym = sampleTrilinear(p.x, p.y - step, p.z, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float zp = sampleTrilinear(p.x, p.y, p.z + step, ok_p);
    const float zm = sampleTrilinear(p.x, p.y, p.z - step, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    return {xp - xm, yp - ym, zp - zm};
}

Vec3f
TsdfVolume::gradReference(const Vec3f &p) const
{
    const float step = voxelSize();
    bool ok_p, ok_m;
    const float xp = interp({p.x + step, p.y, p.z}, ok_p);
    const float xm = interp({p.x - step, p.y, p.z}, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float yp = interp({p.x, p.y + step, p.z}, ok_p);
    const float ym = interp({p.x, p.y - step, p.z}, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    const float zp = interp({p.x, p.y, p.z + step}, ok_p);
    const float zm = interp({p.x, p.y, p.z - step}, ok_m);
    if (!ok_p && !ok_m)
        return Vec3f{};
    return {xp - xm, yp - ym, zp - zm};
}

const float *
TsdfVolume::lambdaTableFor(const CameraIntrinsics &intrinsics,
                           size_t width, size_t height)
{
    if (lambdaWidth_ == width && lambdaHeight_ == height &&
        lambdaFx_ == intrinsics.fx && lambdaFy_ == intrinsics.fy &&
        lambdaCx_ == intrinsics.cx && lambdaCy_ == intrinsics.cy)
        return lambdaTable_.data();

    // Lambda scales the depth difference to distance along the pixel
    // ray (KinectFusion's lambda correction). It is sampled once at
    // each pixel's center — the same pixel the depth measurement is
    // fetched from — instead of at the voxel's continuous projection,
    // removing a sqrt and two divisions per voxel visit.
    lambdaTable_.resize(width * height);
    for (size_t py = 0; py < height; ++py) {
        for (size_t px = 0; px < width; ++px) {
            const float ux = (static_cast<float>(px) + 0.5f -
                              intrinsics.cx) /
                             intrinsics.fx;
            const float uy = (static_cast<float>(py) + 0.5f -
                              intrinsics.cy) /
                             intrinsics.fy;
            lambdaTable_[py * width + px] =
                std::sqrt(1.0f + ux * ux + uy * uy);
        }
    }
    lambdaFx_ = intrinsics.fx;
    lambdaFy_ = intrinsics.fy;
    lambdaCx_ = intrinsics.cx;
    lambdaCy_ = intrinsics.cy;
    lambdaWidth_ = width;
    lambdaHeight_ = height;
    return lambdaTable_.data();
}

void
TsdfVolume::integrate(const support::Image<float> &depth,
                      const CameraIntrinsics &intrinsics,
                      const Mat4f &camera_to_world, float mu,
                      float max_weight, WorkCounts &counts,
                      support::ThreadPool *pool)
{
    integrateImpl(depth, intrinsics, camera_to_world, mu, max_weight,
                  counts, pool, /*cull=*/true,
                  backend_ ? *backend_ : scalarKernelBackend());
}

void
TsdfVolume::integrateDense(const support::Image<float> &depth,
                           const CameraIntrinsics &intrinsics,
                           const Mat4f &camera_to_world, float mu,
                           float max_weight, WorkCounts &counts,
                           support::ThreadPool *pool)
{
    // Always the scalar backend: the dense sweep is the numerical
    // reference the parity tests compare every backend against.
    integrateImpl(depth, intrinsics, camera_to_world, mu, max_weight,
                  counts, pool, /*cull=*/false, scalarKernelBackend());
}

void
TsdfVolume::integrateImpl(const support::Image<float> &depth,
                          const CameraIntrinsics &intrinsics,
                          const Mat4f &camera_to_world, float mu,
                          float max_weight, WorkCounts &counts,
                          support::ThreadPool *pool, bool cull,
                          const KernelBackend &backend)
{
    KernelTimer timer(counts, KernelId::Integrate);
    const Mat4f world_to_camera = camera_to_world.rigidInverse();
    const float vs = voxelSize();
    const int res = resolution_;
    const size_t width = depth.width();
    const size_t height = depth.height();
    const float *lambda_table =
        lambdaTableFor(intrinsics, width, height);

    // The camera-frame z-step is identical for every column: hoisted
    // out of the per-column loop.
    const Vec3f step = world_to_camera.transformDir({0.0f, 0.0f, vs});

    // Loop invariants of the per-voxel fusion body, shared by every
    // column this call visits (the backend hook's context).
    IntegrateContext ctx;
    ctx.depth = depth.data();
    ctx.width = width;
    ctx.height = height;
    ctx.lambda = lambda_table;
    ctx.intrinsics = intrinsics;
    ctx.mu = mu;
    ctx.invMu = 1.0f / mu;
    ctx.maxWeight = max_weight;
    ctx.step = step;
    const double slack =
        cull ? accumulationSlack(world_to_camera, origin_, size_, res)
             : 0.0;

    // Visited/culled voxels, accumulated per chunk then folded in
    // with integer atomics so the totals are deterministic under any
    // parallel schedule.
    std::atomic<long long> visited_total{0};
    std::atomic<long long> culled_total{0};

    // March along voxel columns: for fixed (x, y) the camera-frame
    // position is affine in z, so compute it incrementally (this is
    // the same strategy the CUDA kernel uses per thread). In the
    // z-major layout the column is contiguous in memory.
    auto process_column_range = [&](size_t begin, size_t end) {
        long long visited = 0;
        long long culled = 0;
        for (size_t xy = begin; xy < end; ++xy) {
            const int x = static_cast<int>(xy) % res;
            const int y = static_cast<int>(xy) / res;
            Vec3f pos = world_to_camera.transformPoint(
                voxelCenter(x, y, 0));
            int z_begin = 0;
            int z_end = res;
            if (cull) {
                const ZInterval zi = cullColumn(
                    pos, step, intrinsics, width, height, res, slack);
                z_begin = zi.begin;
                z_end = zi.end;
            }
            culled += res - (z_end - z_begin);
            if (z_begin >= z_end)
                continue;
            visited += z_end - z_begin;
            // Fast-forward to z_begin by replaying the accumulation
            // the dense sweep performs, so every visited voxel sees a
            // bit-identical position.
            for (int z = 0; z < z_begin; ++z)
                pos += step;
            Voxel *column = voxels_.data() + index(x, y, 0);
            backend.integrateColumn(ctx, column, z_begin, z_end, pos);
        }
        visited_total.fetch_add(visited, std::memory_order_relaxed);
        culled_total.fetch_add(culled, std::memory_order_relaxed);
    };

    const size_t columns = static_cast<size_t>(res) * res;
    if (pool) {
        pool->parallelForChunked(0, columns, process_column_range);
    } else {
        process_column_range(0, columns);
    }

    const double visited =
        static_cast<double>(visited_total.load());
    const double culled = static_cast<double>(culled_total.load());

    // Work unit: voxel visits actually performed; culled voxels are
    // reported as skipped work so the naive workload (res^3) stays
    // reconstructible as items + skipped.
    counts.addItems(KernelId::Integrate, visited);
    counts.addSkipped(KernelId::Integrate, culled);
    counts.addBytes(KernelId::Integrate, visited * 16.0);

    namespace sm = support::metrics;
    static sm::Counter &visited_counter =
        sm::Registry::instance().counter("volume.integrate.visited");
    static sm::Counter &culled_counter =
        sm::Registry::instance().counter("volume.integrate.culled");
    visited_counter.add(static_cast<uint64_t>(visited_total.load()));
    culled_counter.add(static_cast<uint64_t>(culled_total.load()));
    TRACE_COUNTER("integrate.voxels", visited);
    TRACE_COUNTER("integrate.culled", culled);
}

} // namespace slambench::kfusion
