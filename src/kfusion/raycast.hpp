#ifndef SLAMBENCH_KFUSION_RAYCAST_HPP
#define SLAMBENCH_KFUSION_RAYCAST_HPP

/**
 * @file
 * TSDF surface extraction by ray marching (KinectFusion's raycast
 * stage) plus the shaded visualization render used by the GUI path.
 */

#include "kfusion/sparse_volume.hpp"
#include "kfusion/volume.hpp"
#include "kfusion/work_counters.hpp"
#include "math/camera.hpp"
#include "support/image.hpp"
#include "support/thread_pool.hpp"

namespace slambench::kfusion {

class KernelBackend;

/** Raycast tuning (derived from the configuration). */
struct RaycastParams
{
    float nearPlane = 0.4f; ///< Meters.
    float farPlane = 4.5f;  ///< Meters.
    /** Coarse step while outside the truncation band, meters. */
    float largeStep = 0.075f;
    /** Fine step near the surface (typically the voxel size). */
    float step = 0.01875f;
};

/**
 * Raycast the volume from a camera, producing model vertex and
 * normal maps in *world* coordinates (the tracker's reference).
 *
 * @param[out] vertex_out World-space hit per pixel; zero on miss.
 * @param[out] normal_out World-space unit normal; zero on miss.
 * @param volume Fused TSDF volume.
 * @param intrinsics Output camera intrinsics.
 * @param camera_to_world Camera pose to cast from.
 * @param params Stepping parameters.
 * @param[in,out] counts Work accounting (Raycast kernel; the item
 *                       unit is marching steps taken).
 * @param pool Optional worker pool.
 * @param backend Kernel backend casting the rays and evaluating the
 *                gradients (nullptr = scalar reference).
 */
void raycastKernel(support::Image<math::Vec3f> &vertex_out,
                   support::Image<math::Vec3f> &normal_out,
                   const TsdfVolume &volume,
                   const math::CameraIntrinsics &intrinsics,
                   const math::Mat4f &camera_to_world,
                   const RaycastParams &params, WorkCounts &counts,
                   support::ThreadPool *pool,
                   const KernelBackend *backend = nullptr);

/**
 * Shaded rendering of the current model (the GUI's right pane).
 *
 * @param[out] out Shaded image.
 * @param volume Fused TSDF volume.
 * @param intrinsics Output camera intrinsics.
 * @param camera_to_world View pose.
 * @param params Stepping parameters.
 * @param[in,out] counts Work accounting (RenderVolume kernel).
 * @param pool Optional worker pool.
 * @param backend Kernel backend casting the rays and evaluating the
 *                gradients (nullptr = scalar reference).
 */
void renderVolumeKernel(support::Image<support::Rgb8> &out,
                        const TsdfVolume &volume,
                        const math::CameraIntrinsics &intrinsics,
                        const math::Mat4f &camera_to_world,
                        const RaycastParams &params, WorkCounts &counts,
                        support::ThreadPool *pool,
                        const KernelBackend *backend = nullptr);

/**
 * Cast a single ray against the volume.
 *
 * @param volume Fused TSDF volume.
 * @param origin Ray origin (world).
 * @param dir Unit ray direction (world).
 * @param params Stepping parameters.
 * @param[out] hit World-space surface point when found.
 * @param[out] steps Marching steps consumed.
 * @return true when a zero crossing (+ to -) was found.
 */
bool castRay(const TsdfVolume &volume, const math::Vec3f &origin,
             const math::Vec3f &dir, const RaycastParams &params,
             math::Vec3f &hit, int &steps);

/**
 * Sparse-volume flavors. Control flow (per-step t accumulation,
 * refinement, invalid-sample handling) is shared with the dense core,
 * so hits are bit-identical to the dense volume's; the sparse sampler
 * resolves its stencil through @p cache and detects unknown space
 * from unallocated blocks without touching voxel memory (the
 * empty-space skip).
 */
bool castRay(const SparseTsdfVolume &volume, const math::Vec3f &origin,
             const math::Vec3f &dir, const RaycastParams &params,
             math::Vec3f &hit, int &steps,
             SparseTsdfVolume::LookupCache &cache);

/**
 * Sparse-volume raycast. Rays march through cached block lookups on
 * the scalar sampler (the kernel backend's packet caster is a
 * dense-layout kernel); results are bit-identical to the dense
 * raycast of the same scene.
 */
void raycastKernel(support::Image<math::Vec3f> &vertex_out,
                   support::Image<math::Vec3f> &normal_out,
                   const SparseTsdfVolume &volume,
                   const math::CameraIntrinsics &intrinsics,
                   const math::Mat4f &camera_to_world,
                   const RaycastParams &params, WorkCounts &counts,
                   support::ThreadPool *pool);

/** Sparse-volume shaded render (see renderVolumeKernel above). */
void renderVolumeKernel(support::Image<support::Rgb8> &out,
                        const SparseTsdfVolume &volume,
                        const math::CameraIntrinsics &intrinsics,
                        const math::Mat4f &camera_to_world,
                        const RaycastParams &params, WorkCounts &counts,
                        support::ThreadPool *pool);

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_RAYCAST_HPP
