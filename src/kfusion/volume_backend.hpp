#ifndef SLAMBENCH_KFUSION_VOLUME_BACKEND_HPP
#define SLAMBENCH_KFUSION_VOLUME_BACKEND_HPP

/**
 * @file
 * The common interface the pipeline drives every TSDF map
 * representation through, and the factory that selects one by name.
 *
 * Two backends are built in:
 *
 *  - "dense": the z-major TsdfVolume — O(resolution^3) memory, the
 *    numerical reference.
 *  - "sparse": the hashed-voxel-block SparseTsdfVolume — memory
 *    proportional to the observed surface, bit-identical to "dense"
 *    at every voxel the dense volume observed.
 *
 * The volume backend (map data structure) is orthogonal to the
 * kernel backend (scalar/simd/mixed instruction flavor): both volume
 * backends fuse columns through the selected KernelBackend, while
 * ray marching runs the dense backend's packet caster or the sparse
 * backend's block-cached scalar sampler — all combinations are
 * bit-exact against each other by the parity contract.
 */

#include <memory>
#include <string>

#include "kfusion/mesh.hpp"
#include "kfusion/raycast.hpp"
#include "kfusion/sparse_volume.hpp"
#include "kfusion/volume.hpp"

namespace slambench::kfusion {

/**
 * Abstract TSDF map the KinectFusion pipeline integrates into,
 * raycasts from, and extracts meshes out of. Implementations wrap a
 * concrete volume; the concrete types remain directly usable (and
 * are what the kernel benchmarks and parity tests drive).
 */
class VolumeBackend
{
  public:
    virtual ~VolumeBackend() = default;

    /** @return backend name: "dense" or "sparse". */
    virtual const char *kind() const = 0;
    /** @return voxels per edge. */
    virtual int resolution() const = 0;
    /** @return edge length, meters. */
    virtual float size() const = 0;
    /** @return world position of the minimum corner. */
    virtual const Vec3f &origin() const = 0;
    /** @return voxel edge length, meters. */
    float voxelSize() const { return size() / resolution(); }

    /** Reset every voxel to unobserved. */
    virtual void reset() = 0;

    /**
     * Select the kernel backend integrate() fuses with (and, for the
     * dense volume, raycasts with); nullptr = scalar reference.
     */
    virtual void setKernelBackend(const KernelBackend *backend) = 0;

    /** @return true when @p p (world) lies inside the volume. */
    virtual bool contains(const Vec3f &p) const = 0;
    /** Trilinear TSDF sample (see TsdfVolume::interp). */
    virtual float interp(const Vec3f &p, bool &valid) const = 0;
    /** Fused TSDF gradient (see TsdfVolume::grad). */
    virtual Vec3f grad(const Vec3f &p) const = 0;
    /** Voxel copy; unobserved voxels read as Voxel{+1, 0}. */
    virtual Voxel voxelAt(int x, int y, int z) const = 0;

    /** Fuse one depth map (see TsdfVolume::integrate). */
    virtual void integrate(const support::Image<float> &depth,
                           const CameraIntrinsics &intrinsics,
                           const Mat4f &camera_to_world, float mu,
                           float max_weight, WorkCounts &counts,
                           support::ThreadPool *pool) = 0;

    /** Raycast model vertex/normal maps (see raycastKernel). */
    virtual void raycast(support::Image<Vec3f> &vertex_out,
                         support::Image<Vec3f> &normal_out,
                         const CameraIntrinsics &intrinsics,
                         const Mat4f &camera_to_world,
                         const RaycastParams &params,
                         WorkCounts &counts,
                         support::ThreadPool *pool) const = 0;

    /** Shaded model render (see renderVolumeKernel). */
    virtual void renderVolume(support::Image<support::Rgb8> &out,
                              const CameraIntrinsics &intrinsics,
                              const Mat4f &camera_to_world,
                              const RaycastParams &params,
                              WorkCounts &counts,
                              support::ThreadPool *pool) const = 0;

    /** Marching-tetrahedra surface extraction (see mesh.hpp). */
    virtual TriangleMesh extractMesh() const = 0;

    /** Resident-memory snapshot (volume.blocks.* source of truth). */
    virtual VolumeMemoryStats memoryStats() const = 0;

    /** @return the dense volume, or nullptr for other backends. */
    virtual const TsdfVolume *dense() const { return nullptr; }
    /** @return the sparse volume, or nullptr for other backends. */
    virtual const SparseTsdfVolume *sparse() const { return nullptr; }
};

/** @return true when @p name names a built-in volume backend. */
bool volumeBackendNameValid(const std::string &name);

/** Registered volume backend names ("dense", "sparse"). */
const std::vector<std::string> &volumeBackendNames();

/**
 * DSE ordinal encoding of the volume backend ("volume" dimension):
 * dense = 0, sparse = 1.
 */
int volumeBackendOrdinal(const std::string &name);

/** Inverse of volumeBackendOrdinal (out-of-range maps to "dense"). */
std::string volumeBackendFromOrdinal(int ordinal);

/**
 * Construct a volume backend by name.
 *
 * @param name "dense" or "sparse" (fatal otherwise).
 * @param resolution Voxels per edge.
 * @param size_m Edge length, meters.
 * @param origin World position of the minimum corner.
 * @param block_size Sparse only: voxels per block edge (8 or 16).
 * @param pool_capacity Sparse only: max resident blocks (0 =
 *                      unbounded).
 */
std::unique_ptr<VolumeBackend>
makeVolumeBackend(const std::string &name, int resolution,
                  float size_m, const Vec3f &origin, int block_size,
                  size_t pool_capacity);

/**
 * Free-function extraction over the interface, so call sites written
 * against `extractMesh(pipeline.volume())` work for every backend.
 */
inline TriangleMesh
extractMesh(const VolumeBackend &volume)
{
    return volume.extractMesh();
}

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_VOLUME_BACKEND_HPP
