#include "kfusion/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "support/trace.hpp"

namespace slambench::kfusion {

namespace {

/**
 * Run @p body(y) for each row, either sequentially or on the pool.
 */
void
forEachRow(size_t rows, support::ThreadPool *pool,
           const std::function<void(size_t)> &body)
{
    if (pool) {
        pool->parallelFor(0, rows, body);
    } else {
        for (size_t y = 0; y < rows; ++y)
            body(y);
    }
}

} // namespace

void
mm2metersKernel(Image<float> &out, const Image<uint16_t> &in, int ratio,
                support::ThreadPool *pool)
{
    if (ratio < 1)
        support::panic("mm2metersKernel: ratio must be >= 1");
    const size_t w = in.width() / static_cast<size_t>(ratio);
    const size_t h = in.height() / static_cast<size_t>(ratio);
    out.resize(w, h);
    const size_t r = static_cast<size_t>(ratio);

    forEachRow(h, pool, [&](size_t y) {
        for (size_t x = 0; x < w; ++x)
            out(x, y) =
                static_cast<float>(in(x * r, y * r)) / 1000.0f;
    });
}

void
bilateralFilterKernel(Image<float> &out, const Image<float> &in,
                      int radius, float gaussian_delta, float e_delta,
                      support::ThreadPool *pool)
{
    const size_t w = in.width();
    const size_t h = in.height();
    out.resize(w, h);

    if (radius == 0) {
        for (size_t i = 0; i < in.size(); ++i)
            out[i] = in[i];
        return;
    }

    // Precompute the spatial Gaussian window.
    const int side = 2 * radius + 1;
    std::vector<float> spatial(static_cast<size_t>(side * side));
    {
        TRACE_SCOPE("bilateral_filter.lut");
        for (int dy = -radius; dy <= radius; ++dy) {
            for (int dx = -radius; dx <= radius; ++dx) {
                const float d2 =
                    static_cast<float>(dx * dx + dy * dy);
                spatial[static_cast<size_t>((dy + radius) * side +
                                            dx + radius)] =
                    std::exp(-d2 / (2.0f * gaussian_delta *
                                    gaussian_delta));
            }
        }
    }

    const float inv_2e2 = 1.0f / (2.0f * e_delta * e_delta);

    forEachRow(h, pool, [&](size_t y) {
        for (size_t x = 0; x < w; ++x) {
            const float center = in(x, y);
            if (center <= 0.0f) {
                out(x, y) = 0.0f;
                continue;
            }
            float sum = 0.0f;
            float weight = 0.0f;
            for (int dy = -radius; dy <= radius; ++dy) {
                const long yy = static_cast<long>(y) + dy;
                if (yy < 0 || yy >= static_cast<long>(h))
                    continue;
                for (int dx = -radius; dx <= radius; ++dx) {
                    const long xx = static_cast<long>(x) + dx;
                    if (xx < 0 || xx >= static_cast<long>(w))
                        continue;
                    const float sample =
                        in(static_cast<size_t>(xx),
                           static_cast<size_t>(yy));
                    if (sample <= 0.0f)
                        continue;
                    const float diff = sample - center;
                    const float range =
                        std::exp(-diff * diff * inv_2e2);
                    const float wgt =
                        spatial[static_cast<size_t>(
                            (dy + radius) * side + dx + radius)] *
                        range;
                    sum += wgt * sample;
                    weight += wgt;
                }
            }
            out(x, y) = weight > 0.0f ? sum / weight : 0.0f;
        }
    });
}

void
halfSampleRobustKernel(Image<float> &out, const Image<float> &in,
                       float e_delta, support::ThreadPool *pool)
{
    const size_t w = in.width() / 2;
    const size_t h = in.height() / 2;
    out.resize(w, h);

    forEachRow(h, pool, [&](size_t y) {
        for (size_t x = 0; x < w; ++x) {
            const float center = in(2 * x, 2 * y);
            if (center <= 0.0f) {
                out(x, y) = 0.0f;
                continue;
            }
            float sum = 0.0f;
            int count = 0;
            for (int dy = 0; dy < 2; ++dy) {
                for (int dx = 0; dx < 2; ++dx) {
                    const size_t xx =
                        std::min(2 * x + static_cast<size_t>(dx),
                                 in.width() - 1);
                    const size_t yy =
                        std::min(2 * y + static_cast<size_t>(dy),
                                 in.height() - 1);
                    const float sample = in(xx, yy);
                    if (sample <= 0.0f)
                        continue;
                    if (std::abs(sample - center) <= e_delta) {
                        sum += sample;
                        ++count;
                    }
                }
            }
            out(x, y) = count > 0 ? sum / static_cast<float>(count)
                                  : 0.0f;
        }
    });
}

void
depth2vertexKernel(Image<Vec3f> &out, const Image<float> &depth,
                   const CameraIntrinsics &intrinsics,
                   support::ThreadPool *pool)
{
    const size_t w = depth.width();
    const size_t h = depth.height();
    out.resize(w, h);

    forEachRow(h, pool, [&](size_t y) {
        for (size_t x = 0; x < w; ++x) {
            const float d = depth(x, y);
            if (d <= 0.0f) {
                out(x, y) = Vec3f{};
                continue;
            }
            out(x, y) = intrinsics.backProject(
                static_cast<float>(x) + 0.5f,
                static_cast<float>(y) + 0.5f, d);
        }
    });
}

void
vertex2normalKernel(Image<Vec3f> &out, const Image<Vec3f> &vertex,
                    support::ThreadPool *pool)
{
    const size_t w = vertex.width();
    const size_t h = vertex.height();
    out.resize(w, h);

    forEachRow(h, pool, [&](size_t y) {
        for (size_t x = 0; x < w; ++x) {
            if (x + 1 >= w || y + 1 >= h) {
                out(x, y) = Vec3f{};
                continue;
            }
            const Vec3f &center = vertex(x, y);
            const Vec3f &right = vertex(x + 1, y);
            const Vec3f &down = vertex(x, y + 1);
            if (center.squaredNorm() == 0.0f ||
                right.squaredNorm() == 0.0f ||
                down.squaredNorm() == 0.0f) {
                out(x, y) = Vec3f{};
                continue;
            }
            const Vec3f du = right - center;
            const Vec3f dv = down - center;
            Vec3f n = du.cross(dv);
            if (n.squaredNorm() < 1e-18f) {
                out(x, y) = Vec3f{};
                continue;
            }
            n = n.normalized();
            // Orient toward the camera (vertices are camera-frame).
            if (n.dot(center) > 0.0f)
                n = -n;
            out(x, y) = n;
        }
    });
}

} // namespace slambench::kfusion
