#ifndef SLAMBENCH_KFUSION_PIPELINE_HPP
#define SLAMBENCH_KFUSION_PIPELINE_HPP

/**
 * @file
 * The KinectFusion pipeline orchestrator: preprocess -> track ->
 * integrate -> raycast, with per-kernel work accounting.
 *
 * This mirrors the kernel structure of the SLAMBench KFusion
 * implementations; the Sequential/Threaded implementation switch
 * plays the role of SLAMBench's C++/OpenMP build variants.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "kfusion/config.hpp"
#include "kfusion/kernels.hpp"
#include "kfusion/raycast.hpp"
#include "kfusion/tracking.hpp"
#include "kfusion/volume.hpp"
#include "kfusion/volume_backend.hpp"
#include "kfusion/work_counters.hpp"

namespace slambench::kfusion {

/** Outcome of processing one frame. */
struct FrameResult
{
    size_t frameIndex = 0;
    TrackingStats tracking;
    /** Whether the volume was updated this frame. */
    bool integrated = false;
    /** Whether model maps were raycast this frame. */
    bool raycast = false;
    /** Work/time accounting for this frame only. */
    WorkCounts work;
    /** Camera-to-world pose after tracking. */
    math::Mat4f pose;
};

/**
 * Dense RGB-D SLAM system (KinectFusion).
 *
 * Usage: construct with the input camera intrinsics and a
 * configuration, setPose() to the starting pose, then feed depth
 * frames in order via processFrame().
 */
class KFusion
{
  public:
    /**
     * @param config Algorithmic parameters (validated; fatal on
     *               invalid values).
     * @param input_intrinsics Intrinsics of the raw depth input.
     * @param impl Kernel implementation flavor.
     * @param num_threads Worker threads for Threaded (0 = auto).
     */
    KFusion(const KFusionConfig &config,
            const math::CameraIntrinsics &input_intrinsics,
            Implementation impl = Implementation::Sequential,
            size_t num_threads = 0);

    /**
     * Check whether a configuration can run on inputs of the given
     * size (the compute image and every pyramid level must stay
     * large enough).
     *
     * @return an empty string when compatible, else the problem.
     */
    static std::string checkCompatibility(
        const KFusionConfig &config,
        const math::CameraIntrinsics &input_intrinsics);

    /** @return the active configuration. */
    const KFusionConfig &config() const { return config_; }

    /** @return current camera-to-world pose estimate. */
    const math::Mat4f &pose() const { return pose_; }

    /** Set the camera pose (normally only before the first frame). */
    void setPose(const math::Mat4f &pose) { pose_ = pose; }

    /**
     * Ingest one depth frame.
     *
     * @param depth_mm Sensor depth in millimeters (0 = invalid), at
     *                 the input intrinsics' resolution.
     * @return tracking outcome, work accounting, and the new pose.
     */
    FrameResult processFrame(const support::Image<uint16_t> &depth_mm);

    /**
     * Render the reconstructed model from @p view_pose into @p out
     * (the GUI's model pane; charged to the RenderVolume kernel).
     *
     * @param out Destination image.
     * @param view_pose Camera-to-world view pose.
     * @param intrinsics Render camera; nullptr renders at the input
     *                   resolution (the GUI default).
     */
    void renderModel(support::Image<support::Rgb8> &out,
                     const math::Mat4f &view_pose,
                     const math::CameraIntrinsics *intrinsics =
                         nullptr);

    /**
     * Render the tracking-status pane: one pixel per tracked pixel
     * colored by its TrackResult (the GUI's bottom-left view).
     */
    void renderTrack(support::Image<support::Rgb8> &out) const;

    /**
     * @return the fused TSDF map behind the volume-backend
     * interface (config.volumeBackend selects dense or sparse).
     */
    const VolumeBackend &volume() const { return *volume_; }

    /** @return model vertex map from the last raycast (world frame). */
    const support::Image<math::Vec3f> &
    raycastVertex() const
    {
        return raycastVertex_;
    }

    /** @return model normal map from the last raycast (world frame). */
    const support::Image<math::Vec3f> &
    raycastNormal() const
    {
        return raycastNormal_;
    }

    /** @return accumulated work over all processed frames. */
    const WorkCounts &totalWork() const { return totalWork_; }

    /** @return per-frame work records, oldest first. */
    const std::vector<WorkCounts> &frameWork() const { return frameWork_; }

    /** @return number of frames processed. */
    size_t frameCount() const { return frame_; }

    /** @return intrinsics the pipeline computes at (after scaling). */
    const math::CameraIntrinsics &
    computeIntrinsics() const
    {
        return scaledIntrinsics_;
    }

    /**
     * @return the resolved kernel backend the hot kernels run on
     * (config.kernelBackend with "auto" already dispatched).
     */
    const KernelBackend &kernelBackend() const { return *backend_; }

  private:
    void preprocess(const support::Image<uint16_t> &depth_mm,
                    WorkCounts &work);
    void buildPyramid(WorkCounts &work);
    RaycastParams raycastParams() const;

    KFusionConfig config_;
    math::CameraIntrinsics inputIntrinsics_;
    math::CameraIntrinsics scaledIntrinsics_;
    Implementation impl_;
    const KernelBackend *backend_ = nullptr;
    std::unique_ptr<support::ThreadPool> pool_;

    std::unique_ptr<VolumeBackend> volume_;
    math::Mat4f pose_;

    // Preprocessing scratch (level-0 depth after bilateral filter).
    support::Image<float> rawDepth_;
    support::Image<float> filteredDepth_;
    std::vector<PyramidLevel> pyramid_;

    // Model (reference) maps from the last raycast.
    support::Image<math::Vec3f> raycastVertex_;
    support::Image<math::Vec3f> raycastNormal_;
    math::Mat4f raycastPose_;
    bool haveReference_ = false;

    // Last track data for the GUI pane.
    support::Image<TrackData> lastTrackData_;

    size_t frame_ = 0;
    WorkCounts totalWork_;
    std::vector<WorkCounts> frameWork_;
};

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_PIPELINE_HPP
