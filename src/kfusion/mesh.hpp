#ifndef SLAMBENCH_KFUSION_MESH_HPP
#define SLAMBENCH_KFUSION_MESH_HPP

/**
 * @file
 * Triangle meshes and marching-cubes surface extraction from the
 * TSDF volume.
 *
 * ICL-NUIM evaluates not only trajectories but the reconstructed
 * surface itself; extracting an explicit mesh from the fused volume
 * enables the same kind of map-quality measurement here (see
 * metrics/reconstruction.hpp), and gives users the standard
 * KinectFusion export artifact (.obj).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "kfusion/sparse_volume.hpp"
#include "kfusion/volume.hpp"
#include "math/vec.hpp"

namespace slambench::kfusion {

/** Indexed triangle mesh in world coordinates. */
struct TriangleMesh
{
    std::vector<math::Vec3f> vertices;
    /** Triples of indices into vertices. */
    std::vector<uint32_t> indices;

    /** @return number of triangles. */
    size_t triangleCount() const { return indices.size() / 3; }

    /**
     * Write as Wavefront OBJ.
     *
     * @param path Destination file.
     * @return true on success.
     */
    bool saveObj(const std::string &path) const;

    /** Axis-aligned bounds of the vertices (zeroes when empty). */
    void bounds(math::Vec3f &lo, math::Vec3f &hi) const;
};

/**
 * Extract the zero isosurface of the volume with marching cubes.
 *
 * Cells touching unobserved voxels are skipped (no surface is
 * hallucinated into unknown space). Vertices are placed by linear
 * interpolation along cell edges.
 *
 * @param volume Fused TSDF volume.
 * @return the extracted mesh (empty when nothing was observed).
 */
TriangleMesh extractMesh(const TsdfVolume &volume);

/**
 * Sparse-volume extraction: only cells whose minimum corner lies in
 * an allocated block are visited (a cell with its minimum corner in
 * unallocated space has an unobserved corner, so the dense extractor
 * skips it too); corner reads crossing into neighbor blocks resolve
 * through the hash. Emits the same triangle set as the dense
 * extractor of the same scene — vertex order differs (block-major
 * visit order), so comparisons must canonicalize.
 */
TriangleMesh extractMesh(const SparseTsdfVolume &volume);

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_MESH_HPP
