#include "kfusion/backend.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "kfusion/backend_simd.hpp"
#include "math/aabb.hpp"
#include "support/logging.hpp"

// The portable "simd" flavor leans on the compiler's vectorizer via
// `#pragma omp simd` when the build enables -fopenmp-simd (see
// SLAMBENCH_HAVE_OPENMP_SIMD in the top-level CMakeLists); without
// it the pragma would only draw -Wunknown-pragmas noise.
#if defined(SLAMBENCH_HAVE_OPENMP_SIMD)
#define SLAMBENCH_SIMD_LOOP _Pragma("omp simd")
#else
#define SLAMBENCH_SIMD_LOOP
#endif

namespace slambench::kfusion {

using math::Vec3f;

double
KernelBackend::modelSpeedup(KernelId) const
{
    return 1.0;
}

namespace {

/**
 * The scalar integrate column sweep — the reference loop body every
 * other backend must reproduce bit-for-bit (the inner loop of
 * TsdfVolume::integrateImpl before backends existed).
 */
void
integrateColumnScalar(const IntegrateContext &ctx, Voxel *column,
                      int z_begin, int z_end, Vec3f pos)
{
    for (int z = z_begin; z < z_end; ++z, pos += ctx.step) {
        if (pos.z <= 0.001f)
            continue;
        const math::Vec2f pix = ctx.intrinsics.project(pos);
        const int px = static_cast<int>(pix.x);
        const int py = static_cast<int>(pix.y);
        if (px < 0 || py < 0 || px >= static_cast<int>(ctx.width) ||
            py >= static_cast<int>(ctx.height))
            continue;
        const float measured =
            ctx.depth[static_cast<size_t>(py) * ctx.width +
                      static_cast<size_t>(px)];
        if (measured <= 0.0f)
            continue;
        const float lambda =
            ctx.lambda[static_cast<size_t>(py) * ctx.width +
                       static_cast<size_t>(px)];
        const float sdf = (measured - pos.z) * lambda;
        if (sdf < -ctx.mu)
            continue; // occluded: behind the surface band
        const float tsdf = std::min(1.0f, sdf * ctx.invMu);
        Voxel &v = column[z];
        const float weight = v.weight;
        v.tsdf = (v.tsdf * weight + tsdf) / (weight + 1.0f);
        v.weight = std::min(weight + 1.0f, ctx.maxWeight);
    }
}

/** Scalar castRays: one castRay() call per packet lane. */
void
castRaysScalar(const TsdfVolume &volume, const Vec3f &origin,
               const Vec3f *dirs, size_t count,
               const RaycastParams &params, RayHit *hits)
{
    for (size_t l = 0; l < count; ++l) {
        hits[l] = RayHit{};
        hits[l].found = castRay(volume, origin, dirs[l], params,
                                hits[l].hit, hits[l].steps);
    }
}

/** The scalar ICP reduction body (reduceKernel's reduce_range). */
ReductionResult
reduceRangeScalar(const support::Image<TrackData> &track_data,
                  size_t begin, size_t end)
{
    ReductionResult partial;
    for (size_t i = begin; i < end; ++i) {
        const TrackData &row = track_data[i];
        if (row.result != TrackResult::Ok)
            continue;
        ++partial.validCount;
        partial.errorSq += static_cast<double>(row.error) * row.error;
        size_t t = 0;
        for (int r = 0; r < 6; ++r) {
            partial.jte[static_cast<size_t>(r)] +=
                static_cast<double>(row.jacobian[r]) * row.error;
            for (int c = r; c < 6; ++c, ++t) {
                partial.jtj[t] +=
                    static_cast<double>(row.jacobian[r]) *
                    row.jacobian[c];
            }
        }
    }
    return partial;
}

/**
 * Portable "simd" integrate column: the scalar per-voxel math with
 * the serial position accumulation hoisted into a block-local array,
 * which removes the loop-carried `pos += step` dependency from the
 * projection/fusion body and lets the compiler's vectorizer work on
 * it. Semantics per voxel are the scalar statements verbatim, so the
 * result is bit-exact on any host.
 */
void
integrateColumnPortable(const IntegrateContext &ctx, Voxel *column,
                        int z_begin, int z_end, Vec3f pos)
{
    constexpr int kBlock = 64;
    float posx[kBlock], posy[kBlock], posz[kBlock];
    int z = z_begin;
    while (z < z_end) {
        const int n = std::min(kBlock, z_end - z);
        for (int l = 0; l < n; ++l) {
            posx[l] = pos.x;
            posy[l] = pos.y;
            posz[l] = pos.z;
            pos += ctx.step;
        }
        SLAMBENCH_SIMD_LOOP
        for (int l = 0; l < n; ++l) {
            if (posz[l] <= 0.001f)
                continue;
            const math::Vec2f pix = ctx.intrinsics.project(
                {posx[l], posy[l], posz[l]});
            const int px = static_cast<int>(pix.x);
            const int py = static_cast<int>(pix.y);
            if (px < 0 || py < 0 ||
                px >= static_cast<int>(ctx.width) ||
                py >= static_cast<int>(ctx.height))
                continue;
            const float measured =
                ctx.depth[static_cast<size_t>(py) * ctx.width +
                          static_cast<size_t>(px)];
            if (measured <= 0.0f)
                continue;
            const float lambda =
                ctx.lambda[static_cast<size_t>(py) * ctx.width +
                           static_cast<size_t>(px)];
            const float sdf = (measured - posz[l]) * lambda;
            if (sdf < -ctx.mu)
                continue;
            const float tsdf = std::min(1.0f, sdf * ctx.invMu);
            Voxel &v = column[z + l];
            const float weight = v.weight;
            v.tsdf = (v.tsdf * weight + tsdf) / (weight + 1.0f);
            v.weight = std::min(weight + 1.0f, ctx.maxWeight);
        }
        z += n;
    }
}

/** The reference backend: the kernels as they have always run. */
class ScalarBackend final : public KernelBackend
{
  public:
    const char *name() const override { return "scalar"; }

    const char *
    description() const override
    {
        return "scalar reference kernels (baseline ISA)";
    }

    void
    integrateColumn(const IntegrateContext &ctx, Voxel *column,
                    int z_begin, int z_end, Vec3f pos) const override
    {
        integrateColumnScalar(ctx, column, z_begin, z_end, pos);
    }

    Vec3f
    grad(const TsdfVolume &volume, const Vec3f &p) const override
    {
        return volume.grad(p);
    }

    void
    castRays(const TsdfVolume &volume, const Vec3f &origin,
             const Vec3f *dirs, size_t count,
             const RaycastParams &params, RayHit *hits) const override
    {
        castRaysScalar(volume, origin, dirs, count, params, hits);
    }

    ReductionResult
    reduceRange(const support::Image<TrackData> &track_data,
                size_t begin, size_t end) const override
    {
        return reduceRangeScalar(track_data, begin, end);
    }
};

/**
 * Explicitly vectorized kernels: AVX2 intrinsics when the build and
 * the CPU both provide them, otherwise a portable fallback with the
 * same lane structure (and scalar delegation where the portable form
 * would add nothing). Either flavor is bit-exact versus scalar.
 */
class SimdBackend final : public KernelBackend
{
  public:
    SimdBackend()
        : avx2_(detail::avx2CompiledIn() && cpuSupportsAvx2())
    {}

    const char *name() const override { return "simd"; }

    const char *
    description() const override
    {
        return avx2_ ? "vectorized kernels (AVX2)"
                     : "vectorized kernels (portable fallback)";
    }

    void
    integrateColumn(const IntegrateContext &ctx, Voxel *column,
                    int z_begin, int z_end, Vec3f pos) const override
    {
        if (avx2_)
            detail::integrateColumnAvx2(ctx, column, z_begin, z_end,
                                        pos);
        else
            integrateColumnPortable(ctx, column, z_begin, z_end, pos);
    }

    Vec3f
    grad(const TsdfVolume &volume, const Vec3f &p) const override
    {
        return avx2_ ? detail::gradAvx2(volume, p) : volume.grad(p);
    }

    void
    castRays(const TsdfVolume &volume, const Vec3f &origin,
             const Vec3f *dirs, size_t count,
             const RaycastParams &params, RayHit *hits) const override
    {
        if (avx2_)
            detail::castRaysAvx2(volume, origin, dirs, count, params,
                                 hits);
        else
            castRaysScalar(volume, origin, dirs, count, params, hits);
    }

    ReductionResult
    reduceRange(const support::Image<TrackData> &track_data,
                size_t begin, size_t end) const override
    {
        return avx2_ ? detail::reduceRangeAvx2(track_data, begin, end)
                     : reduceRangeScalar(track_data, begin, end);
    }

    double
    modelSpeedup(KernelId id) const override
    {
        if (!avx2_)
            return 1.0;
        // Host-calibrated per-kernel throughput ratios versus the
        // scalar backend (items_per_second in BENCH_kernels.json,
        // single core; see docs/KERNEL_BACKENDS.md for the
        // calibration procedure). Integrate is below 1.0 on purpose:
        // the column sweep's scalar early-out branches skip most of
        // the per-voxel work, while the vector path pays two gathers
        // plus the {tsdf, weight} de/re-interleave for every 8-voxel
        // block — so AVX2 loses there and the model says so.
        // RenderVolume shares the marchImage ray-march core with
        // Raycast and inherits its factor (it has no dedicated
        // microbenchmark). The device models scale itemsPerSecond by
        // these factors; joulesPerItem is left untouched — vector
        // units retire the same arithmetic per item, so energy per
        // item is modeled as implementation-invariant (a conservative
        // simplification).
        switch (id) {
          case KernelId::Integrate: return 0.80;
          case KernelId::Raycast: return 2.60;
          case KernelId::RenderVolume: return 2.60;
          case KernelId::Reduce: return 2.70;
          default: return 1.0;
        }
    }

  private:
    const bool avx2_;
};

/**
 * Per-kernel composition of the scalar and simd backends: each hot
 * kernel dispatches to whichever constituent models faster for it
 * (modelSpeedup), chosen once at construction. On an AVX2 host that
 * is the scalar integrate (the column sweep's early-out branches
 * beat the vector path's gathers; see SimdBackend::modelSpeedup)
 * combined with the vectorized gradient, ray-march, and reduction.
 * Without AVX2 both constituents model 1.0 and the pick degenerates
 * to scalar everywhere, which is the same code the simd backend
 * would run anyway. Bit-exactness is inherited: every constituent
 * kernel is bit-exact against scalar, so any per-kernel mix is too.
 */
class MixedBackend final : public KernelBackend
{
  public:
    MixedBackend(const KernelBackend &scalar,
                 const KernelBackend &simd)
        : integrate_(pick(scalar, simd, KernelId::Integrate)),
          raycast_(pick(scalar, simd, KernelId::Raycast)),
          reduce_(pick(scalar, simd, KernelId::Reduce))
    {}

    const char *name() const override { return "mixed"; }

    const char *
    description() const override
    {
        return "per-kernel dispatch (fastest of scalar/simd each)";
    }

    void
    integrateColumn(const IntegrateContext &ctx, Voxel *column,
                    int z_begin, int z_end, Vec3f pos) const override
    {
        integrate_.integrateColumn(ctx, column, z_begin, z_end, pos);
    }

    Vec3f
    grad(const TsdfVolume &volume, const Vec3f &p) const override
    {
        // The gradient is the raycaster's per-hit epilogue; it rides
        // with the ray-march pick.
        return raycast_.grad(volume, p);
    }

    void
    castRays(const TsdfVolume &volume, const Vec3f &origin,
             const Vec3f *dirs, size_t count,
             const RaycastParams &params, RayHit *hits) const override
    {
        raycast_.castRays(volume, origin, dirs, count, params, hits);
    }

    ReductionResult
    reduceRange(const support::Image<TrackData> &track_data,
                size_t begin, size_t end) const override
    {
        return reduce_.reduceRange(track_data, begin, end);
    }

    double
    modelSpeedup(KernelId id) const override
    {
        return backendFor(id).modelSpeedup(id);
    }

    /** @return the constituent that serves @p id. */
    const KernelBackend &
    backendFor(KernelId id) const
    {
        switch (id) {
          case KernelId::Integrate: return integrate_;
          // RenderVolume shares the marchImage core with Raycast.
          case KernelId::Raycast:
          case KernelId::RenderVolume: return raycast_;
          case KernelId::Reduce: return reduce_;
          default: return integrate_;
        }
    }

  private:
    static const KernelBackend &
    pick(const KernelBackend &a, const KernelBackend &b, KernelId id)
    {
        return b.modelSpeedup(id) > a.modelSpeedup(id) ? b : a;
    }

    const KernelBackend &integrate_;
    const KernelBackend &raycast_;
    const KernelBackend &reduce_;
};

/** Registry storage; guarded by registryMutex(). */
std::vector<const KernelBackend *> &
registrySlots()
{
    static std::vector<const KernelBackend *> slots;
    return slots;
}

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

const ScalarBackend &
builtinScalar()
{
    static const ScalarBackend backend;
    return backend;
}

/** Register the built-in backends exactly once, in a fixed order. */
void
ensureBuiltins()
{
    static const bool once = [] {
        static const SimdBackend simd;
        static const MixedBackend mixed(builtinScalar(), simd);
        registrySlots().push_back(&builtinScalar());
        registrySlots().push_back(&simd);
        registrySlots().push_back(&mixed);
        return true;
    }();
    (void)once;
}

const KernelBackend *
findLocked(std::string_view name)
{
    for (const KernelBackend *backend : registrySlots())
        if (name == backend->name())
            return backend;
    return nullptr;
}

} // namespace

bool
registerKernelBackend(const KernelBackend *backend)
{
    if (!backend || !backend->name() || backend->name()[0] == '\0')
        return false;
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltins();
    if (std::string_view(backend->name()) == "auto" ||
        findLocked(backend->name()))
        return false;
    registrySlots().push_back(backend);
    return true;
}

const KernelBackend *
findKernelBackend(std::string_view name)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltins();
    return findLocked(name);
}

const KernelBackend *
resolveKernelBackend(std::string_view name, std::string *error)
{
    // "auto" now lands on "mixed", not "simd": PR 6 shipped the simd
    // backend with a known integrate regression (modelSpeedup 0.80),
    // so the right automatic choice is the per-kernel composition.
    const std::string_view requested =
        name == "auto" ? (simdBackendIsAccelerated()
                              ? std::string_view("mixed")
                              : std::string_view("scalar"))
                       : name;
    if (const KernelBackend *backend = findKernelBackend(requested))
        return backend;
    if (error) {
        std::string names = "auto";
        for (const std::string &n : kernelBackendNames())
            names += ", " + n;
        *error = "unknown kernel backend '" + std::string(name) +
                 "' (valid: " + names + ")";
    }
    return nullptr;
}

std::vector<std::string>
kernelBackendNames()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureBuiltins();
    std::vector<std::string> names;
    names.reserve(registrySlots().size());
    for (const KernelBackend *backend : registrySlots())
        names.emplace_back(backend->name());
    return names;
}

const KernelBackend &
scalarKernelBackend()
{
    return builtinScalar();
}

bool
cpuSupportsAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
simdBackendIsAccelerated()
{
    return detail::avx2CompiledIn() && cpuSupportsAvx2();
}

double
kernelBackendOrdinal(std::string_view name)
{
    const std::string_view resolved =
        name == "auto"
            ? (simdBackendIsAccelerated() ? std::string_view("mixed")
                                          : std::string_view("scalar"))
            : name;
    if (resolved == "simd")
        return 1.0;
    if (resolved == "mixed")
        return 2.0;
    return 0.0;
}

const char *
kernelBackendFromOrdinal(double ordinal)
{
    if (ordinal == 1.0)
        return "simd";
    if (ordinal == 2.0)
        return "mixed";
    return "scalar";
}

} // namespace slambench::kfusion
