#ifndef SLAMBENCH_KFUSION_WORK_COUNTERS_HPP
#define SLAMBENCH_KFUSION_WORK_COUNTERS_HPP

/**
 * @file
 * Deterministic work accounting for every pipeline kernel.
 *
 * SLAMBench measures wall time per kernel on each platform. This
 * reproduction additionally counts *work items* per kernel (pixels
 * filtered, ICP pixel-iterations, voxels touched, raycast steps...),
 * which device models translate into simulated time and energy for
 * platforms we do not have (Odroid-XU3, the 83 Android devices).
 * Work counts are exact and platform-independent, which makes every
 * figure in EXPERIMENTS.md bit-reproducible.
 */

#include <array>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "support/trace.hpp"

namespace slambench::kfusion {

/** Identifiers of the pipeline's compute kernels. */
enum class KernelId : size_t {
    Mm2Meters = 0,   ///< Depth unit conversion + subsampling.
    BilateralFilter, ///< Edge-preserving depth smoothing.
    HalfSample,      ///< Pyramid down-sampling.
    Depth2Vertex,    ///< Back-projection to a vertex map.
    Vertex2Normal,   ///< Normal map from vertex differences.
    Track,           ///< ICP correspondence + residual per pixel.
    Reduce,          ///< ICP normal-equation reduction.
    Solve,           ///< 6x6 solve + pose update.
    Integrate,       ///< TSDF fusion.
    Raycast,         ///< Surface extraction marching.
    RenderVolume,    ///< Visualization raycast (GUI path).
    Count,
};

/** Number of kernels tracked. */
constexpr size_t kNumKernels = static_cast<size_t>(KernelId::Count);

/** @return a short stable name for CSV output. */
const char *kernelName(KernelId id);

/** Work items and host time for all kernels over some interval. */
struct WorkCounts
{
    /** Abstract work items per kernel (kernel-specific unit). */
    std::array<double, kNumKernels> items{};
    /** Approximate memory traffic per kernel, bytes. */
    std::array<double, kNumKernels> bytes{};
    /** Host wall-clock seconds per kernel. */
    std::array<double, kNumKernels> hostSeconds{};
    /**
     * Work items *avoided* per kernel (same unit as items): voxels a
     * culled integration never visited, rays clipped before marching,
     * and so on. items + skipped equals the naive kernel's workload,
     * so optimization wins stay visible in reports without inflating
     * the device models' simulated time.
     */
    std::array<double, kNumKernels> skipped{};

    /** Add @p n work items to kernel @p id. */
    void
    addItems(KernelId id, double n)
    {
        items[static_cast<size_t>(id)] += n;
    }

    /** Add @p n bytes of memory traffic to kernel @p id. */
    void
    addBytes(KernelId id, double n)
    {
        bytes[static_cast<size_t>(id)] += n;
    }

    /** @return bytes for kernel @p id. */
    double
    bytesFor(KernelId id) const
    {
        return bytes[static_cast<size_t>(id)];
    }

    /** Add host time to kernel @p id. */
    void
    addHostSeconds(KernelId id, double s)
    {
        hostSeconds[static_cast<size_t>(id)] += s;
    }

    /** @return items for kernel @p id. */
    double
    itemsFor(KernelId id) const
    {
        return items[static_cast<size_t>(id)];
    }

    /** @return host seconds for kernel @p id. */
    double
    hostSecondsFor(KernelId id) const
    {
        return hostSeconds[static_cast<size_t>(id)];
    }

    /** Add @p n avoided work items to kernel @p id. */
    void
    addSkipped(KernelId id, double n)
    {
        skipped[static_cast<size_t>(id)] += n;
    }

    /** @return avoided work items for kernel @p id. */
    double
    skippedFor(KernelId id) const
    {
        return skipped[static_cast<size_t>(id)];
    }

    /** Component-wise accumulate. */
    void
    merge(const WorkCounts &other)
    {
        for (size_t i = 0; i < kNumKernels; ++i) {
            items[i] += other.items[i];
            bytes[i] += other.bytes[i];
            hostSeconds[i] += other.hostSeconds[i];
            skipped[i] += other.skipped[i];
        }
    }

    /** @return total host seconds across kernels. */
    double totalHostSeconds() const;
    /** @return total work items across kernels (rarely meaningful). */
    double totalItems() const;
};

/**
 * RAII timer adding elapsed wall time (and optionally work items) to
 * a WorkCounts entry on destruction.
 *
 * When tracing is enabled the timer also emits a Category::Kernel
 * span named kernelName(id), so a timeline opened in chrome://tracing
 * carries exactly the names of the work-counter CSV columns and the
 * span totals reconcile with WorkCounts::hostSecondsFor().
 */
class KernelTimer
{
  public:
    /**
     * @param counts Destination accumulator; must outlive the timer.
     * @param id Kernel being measured.
     */
    KernelTimer(WorkCounts &counts, KernelId id)
        : counts_(counts), id_(id),
#if SLAMBENCH_TRACE_ENABLED
          span_(kernelName(id), support::trace::Category::Kernel),
#endif
          start_(std::chrono::steady_clock::now())
    {}

    KernelTimer(const KernelTimer &) = delete;
    KernelTimer &operator=(const KernelTimer &) = delete;

    ~KernelTimer()
    {
        const auto end = std::chrono::steady_clock::now();
        counts_.addHostSeconds(
            id_, std::chrono::duration<double>(end - start_).count());
    }

  private:
    WorkCounts &counts_;
    KernelId id_;
#if SLAMBENCH_TRACE_ENABLED
    // Declared before start_ so the span opens before timing begins
    // and closes after the host time is accumulated: the span always
    // covers (and slightly exceeds) the counted interval.
    support::trace::ScopedSpan span_;
#endif
    std::chrono::steady_clock::time_point start_;
};

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_WORK_COUNTERS_HPP
