#include "kfusion/config.hpp"

#include <sstream>

#include "kfusion/backend.hpp"
#include "kfusion/volume_backend.hpp"
#include "support/strings.hpp"

namespace slambench::kfusion {

std::string
KFusionConfig::validate() const
{
    if (computeSizeRatio != 1 && computeSizeRatio != 2 &&
        computeSizeRatio != 4 && computeSizeRatio != 8)
        return "computeSizeRatio must be one of {1, 2, 4, 8}";
    if (!(icpThreshold > 0.0f))
        return "icpThreshold must be positive";
    if (!(mu > 0.0f))
        return "mu must be positive";
    if (integrationRate < 1)
        return "integrationRate must be >= 1";
    if (volumeResolution < 16 || volumeResolution > 1024)
        return "volumeResolution must be in [16, 1024]";
    if (!(volumeSize > 0.0f))
        return "volumeSize must be positive";
    if (pyramidIterations.empty() || pyramidIterations.size() > 5)
        return "pyramidIterations must have 1..5 levels";
    for (int iters : pyramidIterations)
        if (iters < 0 || iters > 100)
            return "per-level ICP iterations must be in [0, 100]";
    if (trackingRate < 1)
        return "trackingRate must be >= 1";
    if (renderingRate < 1)
        return "renderingRate must be >= 1";
    if (filterRadius < 0 || filterRadius > 8)
        return "filterRadius must be in [0, 8]";
    if (!(nearPlane >= 0.0f) || !(farPlane > nearPlane))
        return "need 0 <= nearPlane < farPlane";
    std::string backend_error;
    if (!resolveKernelBackend(kernelBackend, &backend_error))
        return backend_error;
    if (!volumeBackendNameValid(volumeBackend))
        return "volumeBackend must be one of {dense, sparse}";
    if (volumeBlockSize != 8 && volumeBlockSize != 16)
        return "volumeBlockSize must be 8 or 16";
    if (volumePoolCapacity < 0)
        return "volumePoolCapacity must be >= 0 (0 = unbounded)";
    return "";
}

std::string
KFusionConfig::toString() const
{
    std::ostringstream out;
    out << "csr=" << computeSizeRatio << " icp=" << icpThreshold
        << " mu=" << mu << " ir=" << integrationRate
        << " vr=" << volumeResolution << " vs=" << volumeSize
        << " pyr=";
    for (size_t i = 0; i < pyramidIterations.size(); ++i) {
        if (i)
            out << ',';
        out << pyramidIterations[i];
    }
    out << " tr=" << trackingRate << " rr=" << renderingRate
        << " kb=" << kernelBackend << " vol=" << volumeBackend;
    if (volumeBackend == "sparse")
        out << " bs=" << volumeBlockSize
            << " pc=" << volumePoolCapacity;
    return out.str();
}

const char *
implementationName(Implementation impl)
{
    return impl == Implementation::Sequential ? "sequential" : "threaded";
}

} // namespace slambench::kfusion
