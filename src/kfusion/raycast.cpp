#include "kfusion/raycast.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kfusion/backend.hpp"
#include "math/aabb.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace slambench::kfusion {

using math::Vec3f;

namespace {

/**
 * Intersect a ray with the volume's AABB (slab test, shared with
 * math::intersectRayAabb).
 *
 * @return false when the ray misses entirely.
 */
bool
clipToVolume(const TsdfVolume &volume, const Vec3f &origin,
             const Vec3f &dir, float &t_near, float &t_far)
{
    const math::Aabb box{volume.origin(),
                         volume.origin() + Vec3f::all(volume.size())};
    return math::intersectRayAabb(box, origin, dir, t_near, t_far);
}

/**
 * Per-row marching-step accumulator, padded to a cache line so
 * adjacent rows written by different workers never share a line
 * (parallelFor hands out consecutive row indices).
 */
struct alignas(64) RowSteps
{
    double value = 0.0;
};

/**
 * Shared ray-march core of raycastKernel and renderVolumeKernel.
 *
 * Rays are cast in packets of up to kRayPacketWidth per row through
 * the kernel backend (the scalar backend casts one castRay per
 * lane), the fused TSDF gradient is evaluated at each hit, and
 * shade(x, y, hit_found, hit, grad) runs for every pixel — grad is
 * the raw (unnormalized) gradient, zero when the ray missed, so each
 * caller applies its own degenerate-normal policy unchanged.
 *
 * @return total marching steps taken across the image.
 */
template <typename ShadeFn>
double
marchImage(const TsdfVolume &volume,
           const math::CameraIntrinsics &intrinsics,
           const math::Mat4f &camera_to_world,
           const RaycastParams &params, support::ThreadPool *pool,
           const KernelBackend &backend, const ShadeFn &shade)
{
    const size_t w = intrinsics.width;
    const size_t h = intrinsics.height;
    const Vec3f origin = camera_to_world.translationPart();
    std::vector<RowSteps> row_steps(h);

    auto process_row = [&](size_t y) {
        double steps_in_row = 0.0;
        Vec3f dirs[kRayPacketWidth];
        RayHit hits[kRayPacketWidth];
        for (size_t x0 = 0; x0 < w; x0 += kRayPacketWidth) {
            const size_t n = std::min(kRayPacketWidth, w - x0);
            for (size_t l = 0; l < n; ++l) {
                const Vec3f dir_cam = intrinsics.rayDir(
                    static_cast<float>(x0 + l) + 0.5f,
                    static_cast<float>(y) + 0.5f);
                dirs[l] = camera_to_world.transformDir(dir_cam)
                              .normalized();
            }
            backend.castRays(volume, origin, dirs, n, params, hits);
            for (size_t l = 0; l < n; ++l) {
                steps_in_row += hits[l].steps;
                const Vec3f g = hits[l].found
                                    ? backend.grad(volume,
                                                   hits[l].hit)
                                    : Vec3f{};
                shade(x0 + l, y, hits[l].found, hits[l].hit, g);
            }
        }
        row_steps[y].value = steps_in_row;
    };

    if (pool) {
        pool->parallelFor(0, h, process_row);
    } else {
        for (size_t y = 0; y < h; ++y)
            process_row(y);
    }

    double total_steps = 0.0;
    for (const RowSteps &s : row_steps)
        total_steps += s.value;
    return total_steps;
}

} // namespace

bool
castRay(const TsdfVolume &volume, const Vec3f &origin, const Vec3f &dir,
        const RaycastParams &params, Vec3f &hit, int &steps)
{
    steps = 0;
    float t_near, t_far;
    if (!clipToVolume(volume, origin, dir, t_near, t_far))
        return false;
    // Start marching at the volume entry point, not the near plane.
    float t = std::max(t_near, params.nearPlane);
    const float t_end = std::min(t_far, params.farPlane);
    if (t >= t_end)
        return false;

    bool valid = false;
    float f_t = volume.interp(origin + dir * t, valid);
    if (valid && f_t < 0.0f)
        return false; // started inside the surface

    float stepsize = params.largeStep;
    while (t < t_end) {
        ++steps;
        t += stepsize;
        bool sample_valid = false;
        const float f_tt =
            volume.interp(origin + dir * t, sample_valid);
        if (!sample_valid) {
            // Unknown space: cross at the coarse rate.
            f_t = 1.0f;
            stepsize = params.largeStep;
            continue;
        }
        if (f_tt < 0.0f) {
            // Zero crossing: linear refinement between samples.
            const float denom = f_t - f_tt;
            const float t_star =
                denom > 1e-12f ? t + stepsize * f_tt / denom : t;
            hit = origin + dir * t_star;
            return true;
        }
        // Close to the surface: drop to the fine step.
        stepsize = f_tt < 0.8f ? params.step : params.largeStep;
        f_t = f_tt;
    }
    return false;
}

void
raycastKernel(support::Image<Vec3f> &vertex_out,
              support::Image<Vec3f> &normal_out,
              const TsdfVolume &volume,
              const math::CameraIntrinsics &intrinsics,
              const math::Mat4f &camera_to_world,
              const RaycastParams &params, WorkCounts &counts,
              support::ThreadPool *pool, const KernelBackend *backend)
{
    KernelTimer timer(counts, KernelId::Raycast);
    const size_t w = intrinsics.width;
    const size_t h = intrinsics.height;
    vertex_out.resize(w, h);
    normal_out.resize(w, h);

    const double total_steps = marchImage(
        volume, intrinsics, camera_to_world, params, pool,
        backend ? *backend : scalarKernelBackend(),
        [&](size_t x, size_t y, bool found, const Vec3f &hit,
            const Vec3f &g) {
            if (found && g.squaredNorm() > 1e-18f) {
                vertex_out(x, y) = hit;
                // TSDF increases away from the surface toward the
                // camera side, so the gradient already points
                // outward.
                normal_out(x, y) = g.normalized();
            } else {
                vertex_out(x, y) = Vec3f{};
                normal_out(x, y) = Vec3f{};
            }
        });

    counts.addItems(KernelId::Raycast, total_steps);
    counts.addBytes(KernelId::Raycast, total_steps * 32.0);

    namespace sm = support::metrics;
    static sm::Counter &rays_counter =
        sm::Registry::instance().counter("raycast.rays");
    static sm::Counter &steps_counter =
        sm::Registry::instance().counter("raycast.steps");
    rays_counter.add(static_cast<uint64_t>(w * h));
    steps_counter.add(static_cast<uint64_t>(total_steps));
    TRACE_COUNTER("raycast.steps", total_steps);
}

void
renderVolumeKernel(support::Image<support::Rgb8> &out,
                   const TsdfVolume &volume,
                   const math::CameraIntrinsics &intrinsics,
                   const math::Mat4f &camera_to_world,
                   const RaycastParams &params, WorkCounts &counts,
                   support::ThreadPool *pool,
                   const KernelBackend *backend)
{
    KernelTimer timer(counts, KernelId::RenderVolume);
    const size_t w = intrinsics.width;
    const size_t h = intrinsics.height;
    out.resize(w, h);

    const Vec3f light = Vec3f{0.3f, 0.8f, -0.5f}.normalized();

    const double total_steps = marchImage(
        volume, intrinsics, camera_to_world, params, pool,
        backend ? *backend : scalarKernelBackend(),
        [&](size_t x, size_t y, bool found, const Vec3f &,
            const Vec3f &g) {
            if (!found || g.squaredNorm() < 1e-18f) {
                out(x, y) = {20, 20, 28};
                return;
            }
            const Vec3f n = g.normalized();
            const float diffuse =
                std::max(0.0f, n.dot(light)) * 0.7f + 0.25f;
            const auto channel = [diffuse](float base) {
                return static_cast<uint8_t>(
                    std::clamp(base * diffuse, 0.0f, 255.0f));
            };
            out(x, y) = {channel(200.0f), channel(205.0f),
                         channel(215.0f)};
        });

    counts.addItems(KernelId::RenderVolume, total_steps);
    counts.addBytes(KernelId::RenderVolume, total_steps * 32.0);
    TRACE_COUNTER("render_volume.steps", total_steps);
}

} // namespace slambench::kfusion
