#include "kfusion/raycast.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kfusion/backend.hpp"
#include "math/aabb.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace slambench::kfusion {

using math::Vec3f;

namespace {

/**
 * Intersect a ray with a volume's AABB (slab test, shared with
 * math::intersectRayAabb).
 *
 * @return false when the ray misses entirely.
 */
bool
clipToVolume(const Vec3f &vol_origin, float vol_size,
             const Vec3f &origin, const Vec3f &dir, float &t_near,
             float &t_far)
{
    const math::Aabb box{vol_origin,
                         vol_origin + Vec3f::all(vol_size)};
    return math::intersectRayAabb(box, origin, dir, t_near, t_far);
}

/**
 * Shared single-ray marching core: every volume backend casts with
 * this exact control flow — per-step t accumulation (never jumped, so
 * refined hit parameters are bit-identical across backends), linear
 * zero-crossing refinement, coarse steps across invalid samples —
 * differing only in how a sample is fetched (@p interp).
 */
template <typename InterpFn>
bool
castRayCore(const Vec3f &vol_origin, float vol_size,
            const Vec3f &origin, const Vec3f &dir,
            const RaycastParams &params, Vec3f &hit, int &steps,
            const InterpFn &interp)
{
    steps = 0;
    float t_near, t_far;
    if (!clipToVolume(vol_origin, vol_size, origin, dir, t_near,
                      t_far))
        return false;
    // Start marching at the volume entry point, not the near plane.
    float t = std::max(t_near, params.nearPlane);
    const float t_end = std::min(t_far, params.farPlane);
    if (t >= t_end)
        return false;

    bool valid = false;
    float f_t = interp(origin + dir * t, valid);
    if (valid && f_t < 0.0f)
        return false; // started inside the surface

    float stepsize = params.largeStep;
    while (t < t_end) {
        ++steps;
        t += stepsize;
        bool sample_valid = false;
        const float f_tt = interp(origin + dir * t, sample_valid);
        if (!sample_valid) {
            // Unknown space: cross at the coarse rate.
            f_t = 1.0f;
            stepsize = params.largeStep;
            continue;
        }
        if (f_tt < 0.0f) {
            // Zero crossing: linear refinement between samples.
            const float denom = f_t - f_tt;
            const float t_star =
                denom > 1e-12f ? t + stepsize * f_tt / denom : t;
            hit = origin + dir * t_star;
            return true;
        }
        // Close to the surface: drop to the fine step.
        stepsize = f_tt < 0.8f ? params.step : params.largeStep;
        f_t = f_tt;
    }
    return false;
}

/**
 * Per-row marching-step accumulator, padded to a cache line so
 * adjacent rows written by different workers never share a line
 * (parallelFor hands out consecutive row indices).
 */
struct alignas(64) RowSteps
{
    double value = 0.0;
};

/** Dense volume caster: ray packets + gradients via the backend. */
struct DenseCaster
{
    const TsdfVolume &volume;
    const KernelBackend &backend;

    void
    castRays(const Vec3f &origin, const Vec3f *dirs, size_t n,
             const RaycastParams &params, RayHit *hits) const
    {
        backend.castRays(volume, origin, dirs, n, params, hits);
    }

    Vec3f
    grad(const Vec3f &p) const
    {
        return backend.grad(volume, p);
    }
};

/**
 * Sparse volume caster: per-lane scalar marching with a block cache
 * shared across the packet (adjacent rays walk the same blocks), a
 * fresh cache per gradient stencil. The kernel backend's packet
 * caster is a dense-layout kernel, so the sparse path always marches
 * the scalar sampler — bit-identical to every dense backend anyway.
 */
struct SparseCaster
{
    const SparseTsdfVolume &volume;

    void
    castRays(const Vec3f &origin, const Vec3f *dirs, size_t n,
             const RaycastParams &params, RayHit *hits) const
    {
        SparseTsdfVolume::LookupCache cache;
        for (size_t l = 0; l < n; ++l)
            hits[l].found =
                castRay(volume, origin, dirs[l], params, hits[l].hit,
                        hits[l].steps, cache);
    }

    Vec3f
    grad(const Vec3f &p) const
    {
        SparseTsdfVolume::LookupCache cache;
        return volume.gradCached(p, cache);
    }
};

/**
 * Shared ray-march core of raycastKernel and renderVolumeKernel.
 *
 * Rays are cast in packets of up to kRayPacketWidth per row through
 * the volume caster (dense: the kernel backend; sparse: per-lane
 * block-cached marching), the fused TSDF gradient is evaluated at
 * each hit, and shade(x, y, hit_found, hit, grad) runs for every
 * pixel — grad is the raw (unnormalized) gradient, zero when the ray
 * missed, so each caller applies its own degenerate-normal policy
 * unchanged.
 *
 * @return total marching steps taken across the image.
 */
template <typename Caster, typename ShadeFn>
double
marchImage(const Caster &caster,
           const math::CameraIntrinsics &intrinsics,
           const math::Mat4f &camera_to_world,
           const RaycastParams &params, support::ThreadPool *pool,
           const ShadeFn &shade)
{
    const size_t w = intrinsics.width;
    const size_t h = intrinsics.height;
    const Vec3f origin = camera_to_world.translationPart();
    std::vector<RowSteps> row_steps(h);

    auto process_row = [&](size_t y) {
        double steps_in_row = 0.0;
        Vec3f dirs[kRayPacketWidth];
        RayHit hits[kRayPacketWidth];
        for (size_t x0 = 0; x0 < w; x0 += kRayPacketWidth) {
            const size_t n = std::min(kRayPacketWidth, w - x0);
            for (size_t l = 0; l < n; ++l) {
                const Vec3f dir_cam = intrinsics.rayDir(
                    static_cast<float>(x0 + l) + 0.5f,
                    static_cast<float>(y) + 0.5f);
                dirs[l] = camera_to_world.transformDir(dir_cam)
                              .normalized();
            }
            caster.castRays(origin, dirs, n, params, hits);
            for (size_t l = 0; l < n; ++l) {
                steps_in_row += hits[l].steps;
                const Vec3f g = hits[l].found
                                    ? caster.grad(hits[l].hit)
                                    : Vec3f{};
                shade(x0 + l, y, hits[l].found, hits[l].hit, g);
            }
        }
        row_steps[y].value = steps_in_row;
    };

    if (pool) {
        pool->parallelFor(0, h, process_row);
    } else {
        for (size_t y = 0; y < h; ++y)
            process_row(y);
    }

    double total_steps = 0.0;
    for (const RowSteps &s : row_steps)
        total_steps += s.value;
    return total_steps;
}

template <typename Caster>
void
raycastKernelImpl(support::Image<Vec3f> &vertex_out,
                  support::Image<Vec3f> &normal_out,
                  const Caster &caster,
                  const math::CameraIntrinsics &intrinsics,
                  const math::Mat4f &camera_to_world,
                  const RaycastParams &params, WorkCounts &counts,
                  support::ThreadPool *pool)
{
    KernelTimer timer(counts, KernelId::Raycast);
    const size_t w = intrinsics.width;
    const size_t h = intrinsics.height;
    vertex_out.resize(w, h);
    normal_out.resize(w, h);

    const double total_steps = marchImage(
        caster, intrinsics, camera_to_world, params, pool,
        [&](size_t x, size_t y, bool found, const Vec3f &hit,
            const Vec3f &g) {
            if (found && g.squaredNorm() > 1e-18f) {
                vertex_out(x, y) = hit;
                // TSDF increases away from the surface toward the
                // camera side, so the gradient already points
                // outward.
                normal_out(x, y) = g.normalized();
            } else {
                vertex_out(x, y) = Vec3f{};
                normal_out(x, y) = Vec3f{};
            }
        });

    counts.addItems(KernelId::Raycast, total_steps);
    counts.addBytes(KernelId::Raycast, total_steps * 32.0);

    namespace sm = support::metrics;
    static sm::Counter &rays_counter =
        sm::Registry::instance().counter("raycast.rays");
    static sm::Counter &steps_counter =
        sm::Registry::instance().counter("raycast.steps");
    rays_counter.add(static_cast<uint64_t>(w * h));
    steps_counter.add(static_cast<uint64_t>(total_steps));
    TRACE_COUNTER("raycast.steps", total_steps);
}

template <typename Caster>
void
renderVolumeKernelImpl(support::Image<support::Rgb8> &out,
                       const Caster &caster,
                       const math::CameraIntrinsics &intrinsics,
                       const math::Mat4f &camera_to_world,
                       const RaycastParams &params, WorkCounts &counts,
                       support::ThreadPool *pool)
{
    KernelTimer timer(counts, KernelId::RenderVolume);
    const size_t w = intrinsics.width;
    const size_t h = intrinsics.height;
    out.resize(w, h);

    const Vec3f light = Vec3f{0.3f, 0.8f, -0.5f}.normalized();

    const double total_steps = marchImage(
        caster, intrinsics, camera_to_world, params, pool,
        [&](size_t x, size_t y, bool found, const Vec3f &,
            const Vec3f &g) {
            if (!found || g.squaredNorm() < 1e-18f) {
                out(x, y) = {20, 20, 28};
                return;
            }
            const Vec3f n = g.normalized();
            const float diffuse =
                std::max(0.0f, n.dot(light)) * 0.7f + 0.25f;
            const auto channel = [diffuse](float base) {
                return static_cast<uint8_t>(
                    std::clamp(base * diffuse, 0.0f, 255.0f));
            };
            out(x, y) = {channel(200.0f), channel(205.0f),
                         channel(215.0f)};
        });

    counts.addItems(KernelId::RenderVolume, total_steps);
    counts.addBytes(KernelId::RenderVolume, total_steps * 32.0);
    TRACE_COUNTER("render_volume.steps", total_steps);
}

} // namespace

bool
castRay(const TsdfVolume &volume, const Vec3f &origin, const Vec3f &dir,
        const RaycastParams &params, Vec3f &hit, int &steps)
{
    return castRayCore(volume.origin(), volume.size(), origin, dir,
                       params, hit, steps,
                       [&](const Vec3f &p, bool &valid) {
                           return volume.interp(p, valid);
                       });
}

bool
castRay(const SparseTsdfVolume &volume, const Vec3f &origin,
        const Vec3f &dir, const RaycastParams &params, Vec3f &hit,
        int &steps, SparseTsdfVolume::LookupCache &cache)
{
    return castRayCore(volume.origin(), volume.size(), origin, dir,
                       params, hit, steps,
                       [&](const Vec3f &p, bool &valid) {
                           return volume.interpCached(p, valid,
                                                      cache);
                       });
}

void
raycastKernel(support::Image<Vec3f> &vertex_out,
              support::Image<Vec3f> &normal_out,
              const TsdfVolume &volume,
              const math::CameraIntrinsics &intrinsics,
              const math::Mat4f &camera_to_world,
              const RaycastParams &params, WorkCounts &counts,
              support::ThreadPool *pool, const KernelBackend *backend)
{
    const DenseCaster caster{
        volume, backend ? *backend : scalarKernelBackend()};
    raycastKernelImpl(vertex_out, normal_out, caster, intrinsics,
                      camera_to_world, params, counts, pool);
}

void
raycastKernel(support::Image<Vec3f> &vertex_out,
              support::Image<Vec3f> &normal_out,
              const SparseTsdfVolume &volume,
              const math::CameraIntrinsics &intrinsics,
              const math::Mat4f &camera_to_world,
              const RaycastParams &params, WorkCounts &counts,
              support::ThreadPool *pool)
{
    const SparseCaster caster{volume};
    raycastKernelImpl(vertex_out, normal_out, caster, intrinsics,
                      camera_to_world, params, counts, pool);
}

void
renderVolumeKernel(support::Image<support::Rgb8> &out,
                   const TsdfVolume &volume,
                   const math::CameraIntrinsics &intrinsics,
                   const math::Mat4f &camera_to_world,
                   const RaycastParams &params, WorkCounts &counts,
                   support::ThreadPool *pool,
                   const KernelBackend *backend)
{
    const DenseCaster caster{
        volume, backend ? *backend : scalarKernelBackend()};
    renderVolumeKernelImpl(out, caster, intrinsics, camera_to_world,
                           params, counts, pool);
}

void
renderVolumeKernel(support::Image<support::Rgb8> &out,
                   const SparseTsdfVolume &volume,
                   const math::CameraIntrinsics &intrinsics,
                   const math::Mat4f &camera_to_world,
                   const RaycastParams &params, WorkCounts &counts,
                   support::ThreadPool *pool)
{
    const SparseCaster caster{volume};
    renderVolumeKernelImpl(out, caster, intrinsics, camera_to_world,
                           params, counts, pool);
}

} // namespace slambench::kfusion
