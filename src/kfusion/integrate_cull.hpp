#ifndef SLAMBENCH_KFUSION_INTEGRATE_CULL_HPP
#define SLAMBENCH_KFUSION_INTEGRATE_CULL_HPP

/**
 * @file
 * Shared frustum-culling machinery of the TSDF integration sweep:
 * the conservative per-column z-interval solve that both the dense
 * volume (TsdfVolume::integrate) and the hashed-voxel-block sparse
 * volume (SparseTsdfVolume::integrate) drive their visits — and, for
 * the sparse volume, their block allocations — from.
 *
 * Extracted from volume.cpp so the sparse backend reuses the exact
 * same interval math: culling decisions are part of the bit-exactness
 * contract (a voxel is visited by the sparse sweep iff the dense
 * culled sweep visits it).
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "math/camera.hpp"
#include "math/mat.hpp"
#include "math/vec.hpp"

namespace slambench::kfusion {

/** Inclusive-begin / exclusive-end z index range of a voxel column. */
struct ZInterval
{
    int begin = 0;
    int end = 0;
};

namespace cull_detail {

/**
 * Intersect the real interval [lo, hi] with the half-space
 * {z : a + b*z > 0}; an empty result is signalled by lo > hi.
 */
inline void
restrictInterval(double a, double b, double &lo, double &hi)
{
    if (std::abs(b) < 1e-300) {
        if (a <= 0.0) {
            lo = 1.0;
            hi = 0.0;
        }
        return;
    }
    const double boundary = -a / b;
    if (b > 0.0)
        lo = std::max(lo, boundary);
    else
        hi = std::min(hi, boundary);
}

} // namespace cull_detail

/**
 * Conservative z-range of the voxels in one column that the dense
 * integration sweep could possibly fuse.
 *
 * The camera-frame position along a column is affine in the z index,
 * pos(z) = p0 + z*step, so each keep-condition of the visit loop
 * (pos.z > 0, projected pixel inside the image) becomes a linear
 * half-space in z once multiplied through by pos.z > 0. The
 * inequalities are solved in double with a whole pixel of margin and
 * an absolute slack on every linear form sized to the worst-case
 * float drift of the incremental `pos += step` sweep (@p slack, an
 * upper bound on |accumulated - affine| per component), so culling
 * can only ever drop voxels the dense sweep provably skips.
 *
 * @param p0 Camera-frame position of the column's z = 0 voxel center.
 * @param step Camera-frame z step between voxel centers.
 * @param k Depth image intrinsics.
 * @param width Depth image width, pixels.
 * @param height Depth image height, pixels.
 * @param res Voxels per column.
 * @param slack Per-component accumulation drift bound, meters.
 */
inline ZInterval
cullColumn(const math::Vec3f &p0, const math::Vec3f &step,
           const math::CameraIntrinsics &k, size_t width,
           size_t height, int res, double slack)
{
    double lo = 0.0;
    double hi = static_cast<double>(res - 1);
    const double x0 = p0.x, y0 = p0.y, z0 = p0.z;
    const double sx = step.x, sy = step.y, sz = step.z;
    const double fx = k.fx, fy = k.fy, cx = k.cx, cy = k.cy;
    const double fw = static_cast<double>(width);
    const double fh = static_cast<double>(height);

    const auto keep = [&](double a, double b, double coeff_mag) {
        cull_detail::restrictInterval(a + coeff_mag * slack, b, lo,
                                      hi);
    };

    // pos.z > 0 (the loop's own bound is the stricter 0.001).
    keep(z0, sz, 1.0);
    // pix.x > -1 (int truncation keeps (-1, 0)); one pixel of margin:
    // fx*pos.x + (cx + 2)*pos.z > 0.
    keep(fx * x0 + (cx + 2.0) * z0, fx * sx + (cx + 2.0) * sz,
         std::abs(fx) + std::abs(cx + 2.0));
    // pix.x < width + 1:  (width + 1 - cx)*pos.z - fx*pos.x > 0.
    keep((fw + 1.0 - cx) * z0 - fx * x0,
         (fw + 1.0 - cx) * sz - fx * sx,
         std::abs(fw + 1.0 - cx) + std::abs(fx));
    // pix.y > -2 and pix.y < height + 1, as above.
    keep(fy * y0 + (cy + 2.0) * z0, fy * sy + (cy + 2.0) * sz,
         std::abs(fy) + std::abs(cy + 2.0));
    keep((fh + 1.0 - cy) * z0 - fy * y0,
         (fh + 1.0 - cy) * sz - fy * sy,
         std::abs(fh + 1.0 - cy) + std::abs(fy));

    if (lo > hi)
        return {};
    int z_begin = static_cast<int>(std::floor(lo)) - 2;
    int z_end = static_cast<int>(std::ceil(hi)) + 3;
    z_begin = std::max(z_begin, 0);
    z_end = std::min(z_end, res);
    if (z_begin >= z_end)
        return {};
    return {z_begin, z_end};
}

/**
 * Upper bound on the float drift |accumulated - affine| of the
 * incremental `pos += step` column sweep, per component.
 *
 * Every intermediate position lies in the camera-frame convex hull of
 * the volume's corners, so res additions each round at most an ulp of
 * the largest corner coordinate; an 8x safety factor covers the
 * voxel-center offset and the double-vs-real solve error.
 */
inline double
accumulationSlack(const math::Mat4f &world_to_camera,
                  const math::Vec3f &origin, float size, int res)
{
    double mag = 1.0;
    for (int corner = 0; corner < 8; ++corner) {
        const math::Vec3f c =
            origin + math::Vec3f{(corner & 1) ? size : 0.0f,
                                 (corner & 2) ? size : 0.0f,
                                 (corner & 4) ? size : 0.0f};
        const math::Vec3f pc = world_to_camera.transformPoint(c);
        mag = std::max({mag, std::abs(static_cast<double>(pc.x)),
                        std::abs(static_cast<double>(pc.y)),
                        std::abs(static_cast<double>(pc.z))});
    }
    return static_cast<double>(res) * mag * 1.2e-7 * 8.0;
}

/**
 * Per-pixel lambda (depth-to-ray-distance) table, rebuilt only when
 * the intrinsics or image size change.
 *
 * Lambda scales the depth difference to distance along the pixel ray
 * (KinectFusion's lambda correction). It is sampled once at each
 * pixel's center — the same pixel the depth measurement is fetched
 * from — instead of at the voxel's continuous projection, removing a
 * sqrt and two divisions per voxel visit. Both volume backends fuse
 * with the same table so their per-voxel math is bit-identical.
 */
class LambdaTable
{
  public:
    const float *
    tableFor(const math::CameraIntrinsics &intrinsics, size_t width,
             size_t height)
    {
        if (width_ == width && height_ == height &&
            fx_ == intrinsics.fx && fy_ == intrinsics.fy &&
            cx_ == intrinsics.cx && cy_ == intrinsics.cy)
            return table_.data();

        table_.resize(width * height);
        for (size_t py = 0; py < height; ++py) {
            for (size_t px = 0; px < width; ++px) {
                const float ux = (static_cast<float>(px) + 0.5f -
                                  intrinsics.cx) /
                                 intrinsics.fx;
                const float uy = (static_cast<float>(py) + 0.5f -
                                  intrinsics.cy) /
                                 intrinsics.fy;
                table_[py * width + px] =
                    std::sqrt(1.0f + ux * ux + uy * uy);
            }
        }
        fx_ = intrinsics.fx;
        fy_ = intrinsics.fy;
        cx_ = intrinsics.cx;
        cy_ = intrinsics.cy;
        width_ = width;
        height_ = height;
        return table_.data();
    }

  private:
    std::vector<float> table_;
    float fx_ = 0.0f, fy_ = 0.0f;
    float cx_ = 0.0f, cy_ = 0.0f;
    size_t width_ = 0, height_ = 0;
};

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_INTEGRATE_CULL_HPP
