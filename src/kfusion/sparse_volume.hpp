#ifndef SLAMBENCH_KFUSION_SPARSE_VOLUME_HPP
#define SLAMBENCH_KFUSION_SPARSE_VOLUME_HPP

/**
 * @file
 * Hashed-voxel-block TSDF volume: the sparse alternative to the dense
 * z-major TsdfVolume, with memory proportional to the observed
 * surface instead of resolution^3.
 *
 * Layout: the volume is partitioned into fixed-size cubic blocks of
 * B^3 voxels (B = 8 or 16, a DSE parameter). Blocks are allocated
 * on demand from a chunked pool during integrate() and found through
 * an open-addressed spatial hash from block coordinates to pool
 * slots. Within a block, voxels are stored z-major (z contiguous,
 * then y, then x) — the same order as a dense sub-volume — so the
 * integration sweep along a column and the kernel-backend
 * `integrateColumn` hooks work on block storage unchanged.
 *
 * Bit-exactness contract (verified by kfusion_parity_test): after
 * identical integrate calls, every voxel the dense volume would hold
 * reads back bit-identically from the sparse volume, interp()/grad()
 * agree bit-exactly at every point, and ray casts return identical
 * hits. The sparse sweep guarantees this by visiting exactly the
 * per-column z-intervals the dense culled sweep visits (same
 * cullColumn solve, same incremental `pos += step` replay, same
 * per-voxel fusion math via the same kernel backend) and by reading
 * unallocated voxels as the default Voxel{+1, 0} — precisely the
 * value an untouched dense voxel holds.
 *
 * Concurrency: findBlock() is lock-free (atomic key probe with
 * acquire loads); allocation serializes on a mutex but publishes the
 * key with release order after the slot data is visible, so readers
 * never observe a half-initialized block. integrate() parallelizes
 * over *block runs* — each task owns a disjoint set of blocks, so
 * voxel writes never race. Like the dense volume, integrate() itself
 * is not re-entrant on one volume.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "kfusion/volume.hpp"

namespace slambench::kfusion {

/** Resident-memory snapshot of a sparse (or dense) volume. */
struct VolumeMemoryStats
{
    /** Blocks currently resident (0 for the dense backend). */
    uint64_t allocatedBlocks = 0;
    /** Blocks swept by the most recent integrate(). */
    uint64_t touchedBlocks = 0;
    /** Cumulative blocks dropped on pool exhaustion. */
    uint64_t droppedBlocks = 0;
    /** Resident bytes: voxel storage plus index structures. */
    uint64_t bytes = 0;
};

/**
 * Sparse TSDF volume over hashed voxel blocks.
 *
 * Mirrors the TsdfVolume sampling API (interp / grad / voxelCenter /
 * contains) plus block-level introspection for tests and tools. See
 * the file comment for layout, parity, and concurrency contracts.
 */
class SparseTsdfVolume
{
  public:
    /** Sentinel "no block" key (hash table empty slot). */
    static constexpr uint64_t kEmptyKey = 0;

    /**
     * Per-thread (or per-ray / per-stencil) direct-mapped cache of
     * the most recent block lookups. Indexed by the coordinate
     * parities (bx&1, by&1, bz&1), so the 8 blocks under any 2x2x2
     * interpolation stencil occupy distinct entries and a stencil
     * straddling block corners still hits after the first fetch.
     * Entries are invalidated by generation, bumped on reset().
     */
    struct LookupCache
    {
        uint64_t keys[8] = {kEmptyKey, kEmptyKey, kEmptyKey,
                            kEmptyKey, kEmptyKey, kEmptyKey,
                            kEmptyKey, kEmptyKey};
        const Voxel *blocks[8] = {};
        uint64_t generation = ~0ull;
    };

    /**
     * @param resolution Voxels per edge (>= 8).
     * @param size_m Edge length in meters.
     * @param origin World position of the minimum corner.
     * @param block_size Voxels per block edge (8 or 16).
     * @param pool_capacity Maximum resident blocks; 0 = unbounded
     *        (bounded only by the block grid itself). On exhaustion
     *        fusion into *new* blocks is dropped (counted and
     *        WARN-logged once); already-resident blocks keep fusing.
     */
    SparseTsdfVolume(int resolution, float size_m,
                     const Vec3f &origin, int block_size,
                     size_t pool_capacity);

    /** @return voxels per edge. */
    int resolution() const { return resolution_; }
    /** @return edge length, meters. */
    float size() const { return size_; }
    /** @return world position of the minimum corner. */
    const Vec3f &origin() const { return origin_; }
    /** @return voxel edge length, meters. */
    float voxelSize() const { return size_ / resolution_; }
    /** @return voxels per block edge. */
    int blockSize() const { return blockSize_; }
    /** @return blocks per volume edge (ceil(resolution / block)). */
    int blocksPerEdge() const { return blocksPerEdge_; }
    /** @return voxels per block (blockSize^3). */
    size_t blockVoxels() const { return blockVoxels_; }
    /** @return maximum resident blocks (never 0 after construction). */
    size_t poolCapacity() const { return poolCapacity_; }
    /** @return open-addressed hash table slot count (power of two). */
    size_t tableSize() const { return tableSize_; }

    /**
     * Drop every block: all voxels read unobserved again. Pool
     * storage is recycled, not freed — slots are reused by later
     * allocations (the "eviction" path exercised by tests).
     */
    void reset();

    /** @return world position of the center of voxel (x, y, z). */
    Vec3f
    voxelCenter(int x, int y, int z) const
    {
        const float vs = voxelSize();
        return origin_ + Vec3f{(x + 0.5f) * vs, (y + 0.5f) * vs,
                               (z + 0.5f) * vs};
    }

    /** @return true when @p p (world) lies inside the volume. */
    bool contains(const Vec3f &p) const;

    /**
     * Voxel copy accessor; unallocated voxels read as the default
     * Voxel{+1, 0} (bit-identical to an untouched dense voxel).
     */
    Voxel voxelAt(int x, int y, int z) const;

    /**
     * Trilinearly interpolated TSDF at world point @p p; same
     * contract and bit-identical result as TsdfVolume::interp().
     * Convenience entry that pays a fresh block-cache per call — hot
     * paths should hold a LookupCache and use interpCached().
     */
    float interp(const Vec3f &p, bool &valid) const;

    /**
     * interp() with a caller-held block cache. When every block under
     * the stencil is unallocated the sample is resolved as invalid
     * (+1) from the cache alone — the empty-space fast path of the
     * sparse ray march; the result is still bit-identical to dense
     * (all-unobserved stencils are invalid there too).
     */
    float interpCached(const Vec3f &p, bool &valid,
                       LookupCache &cache) const;

    /**
     * TSDF gradient at world point @p p; bit-identical to
     * TsdfVolume::grad(). Convenience entry; see gradCached().
     */
    Vec3f grad(const Vec3f &p) const;

    /** grad() with a caller-held block cache. */
    Vec3f gradCached(const Vec3f &p, LookupCache &cache) const;

    /**
     * Fuse one metric depth map (KinectFusion integration step),
     * bit-identical to TsdfVolume::integrate() on the observed
     * region.
     *
     * Phases: (1) the dense backend's exact per-column frustum cull,
     * parallel over columns; (2) a serial sweep turning the column
     * intervals into runs of consecutive touched blocks along z per
     * block footprint; (3) parallel fusion, one task per block run,
     * over @p pool. Blocks with no prior content are swept into
     * thread-local scratch first and only allocated when some voxel
     * actually fused (weight > 0), so residency tracks the observed
     * region exactly — never the conservative cull margin.
     *
     * Not thread-safe against concurrent calls on the same volume.
     *
     * @param depth Metric depth image; 0 marks invalid pixels.
     * @param intrinsics Intrinsics of @p depth.
     * @param camera_to_world Camera pose of the depth map.
     * @param mu Truncation band, meters.
     * @param max_weight Weight saturation bound.
     * @param[in,out] counts Work accounting (Integrate kernel).
     * @param pool Optional worker pool.
     */
    void integrate(const support::Image<float> &depth,
                   const CameraIntrinsics &intrinsics,
                   const Mat4f &camera_to_world, float mu,
                   float max_weight, WorkCounts &counts,
                   support::ThreadPool *pool);

    /**
     * Select the kernel backend integrate() fuses columns with
     * (nullptr for the scalar reference).
     */
    void setBackend(const KernelBackend *backend)
    {
        backend_ = backend;
    }

    /** @return the active kernel backend (nullptr = scalar). */
    const KernelBackend *backend() const { return backend_; }

    /**
     * Find a resident block by block coordinates. Lock-free; safe
     * concurrently with allocation of other blocks.
     *
     * @return block voxel storage (z-major within the block), or
     *         nullptr when the block is not resident.
     */
    const Voxel *findBlock(int bx, int by, int bz) const;

    /**
     * Find-or-allocate a block (serialized on the allocation mutex;
     * the returned storage is default-initialized when fresh).
     *
     * @return the block's voxel storage, or nullptr when the pool is
     *         at capacity and the block is not resident.
     */
    Voxel *allocateBlock(int bx, int by, int bz);

    /** @return number of resident blocks. */
    size_t allocatedBlocks() const
    {
        return allocated_.load(std::memory_order_relaxed);
    }

    /**
     * Coordinates of every resident block, sorted by (bx, by, bz) so
     * iteration order is deterministic regardless of the allocation
     * schedule. Not safe concurrently with integrate().
     */
    std::vector<Vec3i> allocatedBlockCoords() const;

    /** @return resident-memory snapshot (see VolumeMemoryStats). */
    VolumeMemoryStats memoryStats() const;

    /**
     * Spatial hash of block coordinates (Niessner et al.'s prime-XOR
     * hash), before masking by the table size. Exposed so tests can
     * construct deliberate collisions.
     */
    static uint32_t
    spatialHash(int bx, int by, int bz)
    {
        return static_cast<uint32_t>(bx) * 73856093u ^
               static_cast<uint32_t>(by) * 19349669u ^
               static_cast<uint32_t>(bz) * 83492791u;
    }

  private:
    /** Packed non-zero hash key for block (bx, by, bz). */
    uint64_t
    blockKey(int bx, int by, int bz) const
    {
        return (static_cast<uint64_t>(bx) * blocksPerEdge_ +
                static_cast<uint64_t>(by)) *
                   blocksPerEdge_ +
               static_cast<uint64_t>(bz) + 1;
    }

    /** Cached block lookup (see LookupCache). */
    const Voxel *
    cachedBlock(int bx, int by, int bz, LookupCache &cache) const
    {
        if (cache.generation != generation_) {
            cache = LookupCache{};
            cache.generation = generation_;
        }
        const int slot = (bx & 1) | ((by & 1) << 1) | ((bz & 1) << 2);
        const uint64_t key = blockKey(bx, by, bz);
        if (cache.keys[slot] == key)
            return cache.blocks[slot];
        const Voxel *block = findBlock(bx, by, bz);
        cache.keys[slot] = key;
        cache.blocks[slot] = block;
        return block;
    }

    /** interp() arithmetic shared by the cached/uncached entries. */
    float sampleTrilinearCached(float px, float py, float pz,
                                bool &valid,
                                LookupCache &cache) const;

    int resolution_;
    float size_;
    Vec3f origin_;
    int blockSize_;
    int blockShift_; ///< log2(blockSize_)
    int blockMask_;  ///< blockSize_ - 1
    int blocksPerEdge_;
    size_t blockVoxels_;
    size_t poolCapacity_;
    size_t tableSize_;
    const KernelBackend *backend_ = nullptr;

    /// Open-addressed table: packed block key (0 = empty) per slot,
    /// published with release order after slotBlocks_[slot] is set.
    std::vector<std::atomic<uint64_t>> tableKeys_;
    /// Voxel storage of the block occupying each table slot.
    std::vector<Voxel *> slotBlocks_;

    /// Pool: fixed-size chunks so block addresses stay stable as the
    /// pool grows; recycled (not freed) by reset().
    std::vector<std::unique_ptr<Voxel[]>> chunks_;
    size_t blocksPerChunk_;
    size_t nextPoolSlot_ = 0;

    std::mutex allocMutex_;
    std::atomic<uint64_t> allocated_{0};
    std::atomic<uint64_t> dropped_{0};
    uint64_t lastTouched_ = 0;
    /// Bumped by reset() so outstanding LookupCaches self-invalidate.
    uint64_t generation_ = 0;
    bool warnedExhausted_ = false;

    LambdaTable lambda_;
    std::vector<ZInterval> cullScratch_;
};

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_SPARSE_VOLUME_HPP
