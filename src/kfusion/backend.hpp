#ifndef SLAMBENCH_KFUSION_BACKEND_HPP
#define SLAMBENCH_KFUSION_BACKEND_HPP

/**
 * @file
 * Pluggable kernel-backend registry: named implementations of the
 * four hot kernels of the frame loop.
 *
 * SLAMBench's founding idea is comparing multiple implementations of
 * the same kernels (C++, OpenMP, OpenCL, CUDA) under one
 * accuracy/performance harness. This registry reproduces that
 * implementation axis for the kernels PR 4 isolated as the hot path:
 *
 *  1. the per-column TSDF integrate sweep
 *     (KernelBackend::integrateColumn),
 *  2. the fused TSDF gradient (KernelBackend::grad),
 *  3. the shared marchImage ray-march core, vectorized as ray
 *     packets (KernelBackend::castRays),
 *  4. the ICP reduction over a pixel range
 *     (KernelBackend::reduceRange).
 *
 * Three backends are built in:
 *
 *  - "scalar": the reference implementation, byte-for-byte the loops
 *    the kernels have always run. Every other backend is tested
 *    against it.
 *  - "simd": explicitly vectorized variants — AVX2 intrinsics when
 *    the build and the CPU support them, otherwise a portable,
 *    intrinsic-free fallback (`#pragma omp simd` hinted) with the
 *    same lane structure.
 *  - "mixed": per-kernel composition of the two — each hot kernel
 *    dispatches to whichever constituent models faster for it
 *    (modelSpeedup). On AVX2 hosts that is the scalar integrate
 *    (the vector integrate's gathers lose to the scalar early-outs)
 *    plus the simd gradient/ray-march/reduction.
 *
 * The special name "auto" is resolved at runtime by CPUID: it picks
 * "mixed" when the host actually provides AVX2 acceleration and
 * "scalar" otherwise, deterministically for a given machine.
 *
 * Numerical-parity contract (docs/ARCHITECTURE.md): all four simd
 * kernels are bit-exact against scalar by construction. Each vector
 * lane replays the scalar operation sequence of exactly one work
 * item (one voxel, one sample, one ray), and the ICP reduction is
 * vectorized across its 28 accumulator slots rather than across
 * pixels, so no floating-point operation is reassociated anywhere.
 * tests/kfusion_parity_test.cpp enforces the contract for every
 * registered backend.
 */

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "kfusion/raycast.hpp"
#include "kfusion/tracking.hpp"
#include "kfusion/volume.hpp"
#include "kfusion/work_counters.hpp"
#include "math/camera.hpp"
#include "math/vec.hpp"
#include "support/image.hpp"

namespace slambench::kfusion {

/** Maximum rays per KernelBackend::castRays packet. */
inline constexpr size_t kRayPacketWidth = 8;

/** Per-ray result of a castRays packet (mirrors castRay outputs). */
struct RayHit
{
    math::Vec3f hit;  ///< World-space surface point when found.
    int steps = 0;    ///< Marching steps consumed by this ray.
    bool found = false; ///< Whether a + to - zero crossing was found.
};

/**
 * Read-only context shared by every column of one integrate call
 * (the loop invariants TsdfVolume::integrateImpl hoists).
 */
struct IntegrateContext
{
    const float *depth = nullptr; ///< Metric depth image, row-major.
    size_t width = 0;             ///< Depth image width, pixels.
    size_t height = 0;            ///< Depth image height, pixels.
    const float *lambda = nullptr; ///< Per-pixel lambda table.
    math::CameraIntrinsics intrinsics; ///< Depth image intrinsics.
    float mu = 0.1f;              ///< Truncation band, meters.
    float invMu = 10.0f;          ///< 1 / mu (hoisted).
    float maxWeight = 100.0f;     ///< Weight saturation bound.
    math::Vec3f step;             ///< Camera-frame z step per voxel.
};

/**
 * One named implementation of the four hot kernels.
 *
 * Implementations must be stateless (safe to call concurrently from
 * the thread pool) and live for the whole process — the registry
 * stores raw pointers.
 */
class KernelBackend
{
  public:
    virtual ~KernelBackend() = default;

    /** @return the registry name (e.g. "scalar", "simd"). */
    virtual const char *name() const = 0;

    /**
     * @return a one-line human-readable description, including the
     * active flavor (e.g. "simd (avx2)" vs "simd (portable)").
     */
    virtual const char *description() const = 0;

    /**
     * Fuse one voxel column's z range into the volume (the inner
     * loop of TsdfVolume::integrateImpl).
     *
     * @param ctx Loop invariants of this integrate call.
     * @param column Voxel column base (z-contiguous storage).
     * @param z_begin First z index to visit (inclusive).
     * @param z_end Last z index to visit (exclusive).
     * @param pos Camera-frame position of voxel @p z_begin, produced
     *            by the caller's incremental `pos += step` sweep.
     */
    virtual void integrateColumn(const IntegrateContext &ctx,
                                 Voxel *column, int z_begin, int z_end,
                                 math::Vec3f pos) const = 0;

    /**
     * Fused TSDF gradient at world point @p p; must match
     * TsdfVolume::grad bit-for-bit (see the parity contract).
     */
    virtual math::Vec3f grad(const TsdfVolume &volume,
                             const math::Vec3f &p) const = 0;

    /**
     * Cast a packet of up to kRayPacketWidth rays (the per-pixel core
     * of marchImage); each lane must match castRay bit-for-bit.
     *
     * @param volume Fused TSDF volume.
     * @param origin Shared ray origin (world).
     * @param dirs Unit ray directions, @p count entries.
     * @param count Rays in the packet (1..kRayPacketWidth).
     * @param params Stepping parameters.
     * @param[out] hits Per-ray results, @p count entries written.
     */
    virtual void castRays(const TsdfVolume &volume,
                          const math::Vec3f &origin,
                          const math::Vec3f *dirs, size_t count,
                          const RaycastParams &params,
                          RayHit *hits) const = 0;

    /**
     * Sum the ICP normal equations over pixels [begin, end) of
     * @p track_data (one chunk of reduceKernel).
     */
    virtual ReductionResult
    reduceRange(const support::Image<TrackData> &track_data,
                size_t begin, size_t end) const = 0;

    /**
     * Speedup factor the analytic device models apply to kernel
     * @p id's items/second rate when a pipeline runs on this backend
     * (the DSE's implementation axis; see docs/ARCHITECTURE.md).
     * The scalar reference returns 1.0 everywhere.
     */
    virtual double modelSpeedup(KernelId id) const;
};

/**
 * Register @p backend under backend->name().
 *
 * The registry keeps the pointer for the process lifetime.
 *
 * @return true on success; false when the name is already taken
 * (duplicate registrations are rejected, not replaced).
 */
bool registerKernelBackend(const KernelBackend *backend);

/**
 * Look up a registered backend by exact name ("auto" is not a
 * registered name; see resolveKernelBackend).
 *
 * @return the backend, or nullptr when unknown.
 */
const KernelBackend *findKernelBackend(std::string_view name);

/**
 * Resolve a user-facing `--backend` value.
 *
 * Accepts every registered name plus "auto", which dispatches by
 * CPUID: "mixed" when the host provides real SIMD acceleration
 * (AVX2 compiled in and supported), else "scalar". Resolution is
 * deterministic on a given machine.
 *
 * @param name Requested backend name.
 * @param[out] error When non-null and resolution fails, receives a
 *             one-line message listing the valid names.
 * @return the backend, or nullptr when @p name is unknown.
 */
const KernelBackend *resolveKernelBackend(std::string_view name,
                                          std::string *error = nullptr);

/** @return registered backend names in registration order. */
std::vector<std::string> kernelBackendNames();

/** @return the built-in scalar reference backend. */
const KernelBackend &scalarKernelBackend();

/** @return true when the CPU supports AVX2 (runtime CPUID check). */
bool cpuSupportsAvx2();

/**
 * @return true when the "simd" backend runs its AVX2 flavor on this
 * host (compiled in and CPU-supported); false means the portable
 * fallback is active.
 */
bool simdBackendIsAccelerated();

/**
 * Map a backend name to its ordinal value in the DSE's
 * "implementation" dimension (0 = scalar, 1 = simd, 2 = mixed);
 * "auto" maps to its resolved backend.
 *
 * @return the ordinal, or 0 when the name is unknown.
 */
double kernelBackendOrdinal(std::string_view name);

/**
 * Inverse of kernelBackendOrdinal.
 *
 * @return the backend name for @p ordinal ("scalar" for 0 or any
 * unknown value, "simd" for 1, "mixed" for 2).
 */
const char *kernelBackendFromOrdinal(double ordinal);

} // namespace slambench::kfusion

#endif // SLAMBENCH_KFUSION_BACKEND_HPP
