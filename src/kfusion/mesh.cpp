#include "kfusion/mesh.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_map>

namespace slambench::kfusion {

using math::Vec3f;

bool
TriangleMesh::saveObj(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "# slambench-repro TSDF mesh: " << vertices.size()
        << " vertices, " << triangleCount() << " triangles\n";
    char line[128];
    for (const Vec3f &v : vertices) {
        std::snprintf(line, sizeof(line), "v %.6f %.6f %.6f\n", v.x,
                      v.y, v.z);
        out << line;
    }
    for (size_t i = 0; i + 2 < indices.size(); i += 3) {
        std::snprintf(line, sizeof(line), "f %u %u %u\n",
                      indices[i] + 1, indices[i + 1] + 1,
                      indices[i + 2] + 1);
        out << line;
    }
    return static_cast<bool>(out);
}

void
TriangleMesh::bounds(Vec3f &lo, Vec3f &hi) const
{
    if (vertices.empty()) {
        lo = Vec3f{};
        hi = Vec3f{};
        return;
    }
    lo = hi = vertices.front();
    for (const Vec3f &v : vertices) {
        lo.x = std::min(lo.x, v.x);
        lo.y = std::min(lo.y, v.y);
        lo.z = std::min(lo.z, v.z);
        hi.x = std::max(hi.x, v.x);
        hi.y = std::max(hi.y, v.y);
        hi.z = std::max(hi.z, v.z);
    }
}

namespace {

/**
 * Marching *tetrahedra*: each cell is split into six tetrahedra
 * around the main diagonal, and each tetrahedron emits 0-2
 * triangles. Compared to classic marching cubes this trades a few
 * extra triangles for a table-free, unambiguous implementation
 * (tetrahedra have no ambiguous sign cases).
 *
 * Generic over the volume backend: VolumeT provides resolution(),
 * voxelCenter() and voxelAt() (copy accessor; the sparse volume reads
 * unallocated voxels as unobserved). The driver decides which cells
 * to visit — the dense path sweeps every cell, the sparse path only
 * cells anchored in allocated blocks.
 */
template <typename VolumeT>
struct Extractor
{
    const VolumeT &volume;
    TriangleMesh mesh;
    /** Dedup map: packed global edge key -> vertex index. */
    std::unordered_map<uint64_t, uint32_t> edgeVertices;

    explicit Extractor(const VolumeT &v) : volume(v) {}

    /** Linear id of voxel (x, y, z). */
    uint64_t
    voxelId(int x, int y, int z) const
    {
        const uint64_t n = static_cast<uint64_t>(volume.resolution());
        return (static_cast<uint64_t>(z) * n +
                static_cast<uint64_t>(y)) *
                   n +
               static_cast<uint64_t>(x);
    }

    /**
     * Vertex on the edge between voxel centers @p a and @p b where
     * the TSDF crosses zero, deduplicated across cells.
     */
    uint32_t
    edgeVertex(uint64_t id_a, uint64_t id_b, const Vec3f &pa,
               const Vec3f &pb, float va, float vb)
    {
        const uint64_t lo = std::min(id_a, id_b);
        const uint64_t hi = std::max(id_a, id_b);
        // Volumes are < 2^21 voxels per side, so this packing is
        // collision-free.
        const uint64_t key = (lo << 42) ^ hi;
        const auto it = edgeVertices.find(key);
        if (it != edgeVertices.end())
            return it->second;

        const float denom = va - vb;
        const float t =
            std::abs(denom) > 1e-12f
                ? std::clamp(va / denom, 0.0f, 1.0f)
                : 0.5f;
        const Vec3f p = pa + (pb - pa) * t;
        const uint32_t index =
            static_cast<uint32_t>(mesh.vertices.size());
        mesh.vertices.push_back(p);
        edgeVertices.emplace(key, index);
        return index;
    }

    /** Emit the isosurface of one tetrahedron. */
    void
    tetrahedron(const uint64_t ids[4], const Vec3f pos[4],
                const float val[4])
    {
        // Classify: inside = negative TSDF.
        int inside[4], outside[4];
        int num_inside = 0, num_outside = 0;
        for (int i = 0; i < 4; ++i) {
            if (val[i] < 0.0f)
                inside[num_inside++] = i;
            else
                outside[num_outside++] = i;
        }
        if (num_inside == 0 || num_inside == 4)
            return;

        auto vert = [&](int a, int b) {
            return edgeVertex(ids[a], ids[b], pos[a], pos[b], val[a],
                              val[b]);
        };

        if (num_inside == 1) {
            const int a = inside[0];
            mesh.indices.push_back(vert(a, outside[0]));
            mesh.indices.push_back(vert(a, outside[1]));
            mesh.indices.push_back(vert(a, outside[2]));
        } else if (num_inside == 3) {
            const int a = outside[0];
            mesh.indices.push_back(vert(a, inside[0]));
            mesh.indices.push_back(vert(a, inside[1]));
            mesh.indices.push_back(vert(a, inside[2]));
        } else {
            // Two inside, two outside: a quad split into two
            // triangles.
            const int a = inside[0], b = inside[1];
            const int c = outside[0], d = outside[1];
            const uint32_t v_ac = vert(a, c);
            const uint32_t v_ad = vert(a, d);
            const uint32_t v_bc = vert(b, c);
            const uint32_t v_bd = vert(b, d);
            mesh.indices.push_back(v_ac);
            mesh.indices.push_back(v_ad);
            mesh.indices.push_back(v_bd);
            mesh.indices.push_back(v_ac);
            mesh.indices.push_back(v_bd);
            mesh.indices.push_back(v_bc);
        }
    }

    /** Extract the surface of the cell anchored at voxel (x, y, z). */
    void
    processCell(int x, int y, int z)
    {
        // Cell corners relative to (x, y, z), numbered so the main
        // diagonal is corner 0 -> corner 6.
        static const int corner[8][3] = {
            {0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
            {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};
        // Six tetrahedra sharing the 0-6 diagonal.
        static const int tets[6][4] = {{0, 1, 2, 6}, {0, 2, 3, 6},
                                       {0, 3, 7, 6}, {0, 7, 4, 6},
                                       {0, 4, 5, 6}, {0, 5, 1, 6}};

        float val[8];
        Vec3f pos[8];
        uint64_t ids[8];
        for (int c = 0; c < 8; ++c) {
            const int cx = x + corner[c][0];
            const int cy = y + corner[c][1];
            const int cz = z + corner[c][2];
            const Voxel v = volume.voxelAt(cx, cy, cz);
            if (v.weight <= 0.0f)
                return;
            val[c] = v.tsdf;
            pos[c] = volume.voxelCenter(cx, cy, cz);
            ids[c] = voxelId(cx, cy, cz);
        }
        // Quick reject: all same sign.
        bool any_neg = false, any_pos = false;
        for (float v : val) {
            any_neg |= v < 0.0f;
            any_pos |= v >= 0.0f;
        }
        if (!any_neg || !any_pos)
            return;

        for (const auto &tet : tets) {
            const uint64_t tet_ids[4] = {ids[tet[0]], ids[tet[1]],
                                         ids[tet[2]], ids[tet[3]]};
            const Vec3f tet_pos[4] = {pos[tet[0]], pos[tet[1]],
                                      pos[tet[2]], pos[tet[3]]};
            const float tet_val[4] = {val[tet[0]], val[tet[1]],
                                      val[tet[2]], val[tet[3]]};
            tetrahedron(tet_ids, tet_pos, tet_val);
        }
    }
};

} // namespace

TriangleMesh
extractMesh(const TsdfVolume &volume)
{
    Extractor<TsdfVolume> extractor(volume);
    const int res = volume.resolution();
    for (int z = 0; z + 1 < res; ++z)
        for (int y = 0; y + 1 < res; ++y)
            for (int x = 0; x + 1 < res; ++x)
                extractor.processCell(x, y, z);
    return std::move(extractor.mesh);
}

TriangleMesh
extractMesh(const SparseTsdfVolume &volume)
{
    Extractor<SparseTsdfVolume> extractor(volume);
    const int res = volume.resolution();
    const int bs = volume.blockSize();
    // Each cell is visited exactly once: by the block holding its
    // minimum corner. Cells anchored in unallocated space have an
    // unobserved minimum corner, which the dense extractor skips too.
    // Blocks come sorted by coordinates, so the output is
    // deterministic regardless of the allocation schedule.
    for (const math::Vec3i &b : volume.allocatedBlockCoords()) {
        const int x0 = b.x * bs, y0 = b.y * bs, z0 = b.z * bs;
        const int x1 = std::min(x0 + bs, res - 1);
        const int y1 = std::min(y0 + bs, res - 1);
        const int z1 = std::min(z0 + bs, res - 1);
        for (int z = z0; z < z1; ++z)
            for (int y = y0; y < y1; ++y)
                for (int x = x0; x < x1; ++x)
                    extractor.processCell(x, y, z);
    }
    return std::move(extractor.mesh);
}

} // namespace slambench::kfusion
