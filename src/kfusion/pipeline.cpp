#include "kfusion/pipeline.hpp"

#include <algorithm>

#include "kfusion/backend.hpp"
#include "metrics/timing.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace slambench::kfusion {

using math::Mat4f;
using math::Vec3f;

std::string
KFusion::checkCompatibility(
    const KFusionConfig &config,
    const math::CameraIntrinsics &input_intrinsics)
{
    const std::string problem = config.validate();
    if (!problem.empty())
        return problem;
    const math::CameraIntrinsics scaled = input_intrinsics.scaled(
        static_cast<size_t>(config.computeSizeRatio));
    if (scaled.width < 8 || scaled.height < 8)
        return "compute image too small; lower the compute-size "
               "ratio";
    math::CameraIntrinsics level_k = scaled;
    for (size_t l = 0; l < config.levels(); ++l) {
        if (level_k.width < 4 || level_k.height < 4)
            return "too many pyramid levels for the compute image "
                   "size";
        level_k = level_k.scaled(2);
    }
    return "";
}

KFusion::KFusion(const KFusionConfig &config,
                 const math::CameraIntrinsics &input_intrinsics,
                 Implementation impl, size_t num_threads)
    : config_(config), inputIntrinsics_(input_intrinsics), impl_(impl)
{
    const std::string problem =
        checkCompatibility(config, input_intrinsics);
    if (!problem.empty())
        support::fatal("KFusion: invalid configuration: " + problem);

    // Resolve "auto" (CPUID dispatch) to a concrete backend once;
    // validate() already guaranteed the name resolves.
    std::string backend_error;
    backend_ = resolveKernelBackend(config_.kernelBackend,
                                    &backend_error);
    if (!backend_)
        support::fatal("KFusion: " + backend_error);

    if (impl_ == Implementation::Threaded)
        pool_ = std::make_unique<support::ThreadPool>(num_threads);

    scaledIntrinsics_ = inputIntrinsics_.scaled(
        static_cast<size_t>(config_.computeSizeRatio));

    volume_ = makeVolumeBackend(
        config_.volumeBackend, config_.volumeResolution,
        config_.volumeSize, config_.volumeOrigin,
        config_.volumeBlockSize,
        static_cast<size_t>(config_.volumePoolCapacity));
    volume_->setKernelBackend(backend_);

    pyramid_.resize(config_.levels());
    math::CameraIntrinsics level_k = scaledIntrinsics_;
    for (size_t l = 0; l < config_.levels(); ++l) {
        pyramid_[l].intrinsics = level_k;
        level_k = level_k.scaled(2);
    }
}

RaycastParams
KFusion::raycastParams() const
{
    RaycastParams params;
    params.nearPlane = config_.nearPlane;
    params.farPlane = config_.farPlane;
    params.step = config_.voxelSize();
    params.largeStep = 0.75f * config_.mu;
    // The coarse step must never be finer than the fine step.
    params.largeStep = std::max(params.largeStep, params.step);
    return params;
}

void
KFusion::preprocess(const support::Image<uint16_t> &depth_mm,
                    WorkCounts &work)
{
    TRACE_SCOPE("preprocess");
    {
        KernelTimer timer(work, KernelId::Mm2Meters);
        mm2metersKernel(rawDepth_, depth_mm, config_.computeSizeRatio,
                        pool_.get());
        work.addItems(KernelId::Mm2Meters,
                      static_cast<double>(rawDepth_.size()));
        work.addBytes(KernelId::Mm2Meters,
                      static_cast<double>(rawDepth_.size()) * 6.0);
    }
    {
        KernelTimer timer(work, KernelId::BilateralFilter);
        bilateralFilterKernel(filteredDepth_, rawDepth_,
                              config_.filterRadius,
                              config_.gaussianDelta, config_.eDelta,
                              pool_.get());
        work.addItems(
            KernelId::BilateralFilter,
            static_cast<double>(filteredDepth_.size()) *
                bilateralItemsPerPixel(config_.filterRadius));
        work.addBytes(
            KernelId::BilateralFilter,
            static_cast<double>(filteredDepth_.size()) *
                (bilateralItemsPerPixel(config_.filterRadius) * 4.0 +
                 4.0));
    }
}

void
KFusion::buildPyramid(WorkCounts &work)
{
    TRACE_SCOPE("build_pyramid");
    pyramid_[0].depth = filteredDepth_;
    for (size_t l = 1; l < pyramid_.size(); ++l) {
        KernelTimer timer(work, KernelId::HalfSample);
        halfSampleRobustKernel(pyramid_[l].depth,
                               pyramid_[l - 1].depth,
                               config_.eDelta * 3.0f, pool_.get());
        work.addItems(KernelId::HalfSample,
                      static_cast<double>(pyramid_[l].depth.size()));
        work.addBytes(KernelId::HalfSample,
                      static_cast<double>(pyramid_[l].depth.size()) *
                          20.0);
    }
    for (size_t l = 0; l < pyramid_.size(); ++l) {
        {
            KernelTimer timer(work, KernelId::Depth2Vertex);
            depth2vertexKernel(pyramid_[l].vertex, pyramid_[l].depth,
                               pyramid_[l].intrinsics, pool_.get());
            work.addItems(
                KernelId::Depth2Vertex,
                static_cast<double>(pyramid_[l].vertex.size()));
            work.addBytes(
                KernelId::Depth2Vertex,
                static_cast<double>(pyramid_[l].vertex.size()) * 16.0);
        }
        {
            KernelTimer timer(work, KernelId::Vertex2Normal);
            vertex2normalKernel(pyramid_[l].normal, pyramid_[l].vertex,
                                pool_.get());
            work.addItems(
                KernelId::Vertex2Normal,
                static_cast<double>(pyramid_[l].normal.size()));
            work.addBytes(
                KernelId::Vertex2Normal,
                static_cast<double>(pyramid_[l].normal.size()) * 48.0);
        }
    }
}

FrameResult
KFusion::processFrame(const support::Image<uint16_t> &depth_mm)
{
    if (depth_mm.width() != inputIntrinsics_.width ||
        depth_mm.height() != inputIntrinsics_.height)
        support::fatal("KFusion::processFrame: frame size does not "
                       "match the input intrinsics");

    TRACE_FRAME(frame_);
    TRACE_SCOPE("process_frame");
    // Registry handles are stable for the process lifetime, so the
    // lookups happen once; per frame this is a few relaxed atomics.
    namespace sm = support::metrics;
    static sm::Counter &frames_counter =
        sm::Registry::instance().counter("pipeline.frames");
    static sm::Counter &integrations_counter =
        sm::Registry::instance().counter("pipeline.integrations");
    static sm::Counter &integration_skips_counter =
        sm::Registry::instance().counter(
            "pipeline.integration_skips");
    static sm::Counter &lost_counter =
        sm::Registry::instance().counter(
            "pipeline.tracking_failures");
    static sm::LatencyHistogram &frame_histogram =
        sm::Registry::instance().histogram(
            "pipeline.frame_seconds");
    const uint64_t start_ns = slambench::metrics::now_ns();

    FrameResult result;
    result.frameIndex = frame_;
    WorkCounts &work = result.work;

    preprocess(depth_mm, work);

    // --- Tracking ---
    const bool do_track =
        frame_ % static_cast<size_t>(config_.trackingRate) == 0;
    if (frame_ == 0) {
        // The first frame defines the reference; nothing to track
        // against yet.
        buildPyramid(work);
        result.tracking.tracked = true;
    } else if (do_track && haveReference_) {
        buildPyramid(work);
        result.tracking = icpTrack(
            pose_, pyramid_, raycastVertex_, raycastNormal_,
            scaledIntrinsics_, raycastPose_, config_, work,
            pool_.get(), &lastTrackData_, backend_);
    } else {
        // Tracking skipped this frame: reuse the previous pose.
        result.tracking.tracked = true;
    }

    // --- Integration ---
    const bool do_integrate =
        result.tracking.tracked &&
        (frame_ % static_cast<size_t>(config_.integrationRate) == 0 ||
         frame_ < 4);
    if (do_integrate) {
        volume_->integrate(rawDepth_, scaledIntrinsics_, pose_,
                           config_.mu, config_.maxWeight, work,
                           pool_.get());
        result.integrated = true;
    }

    // --- Raycast the model for the next frame's tracking ---
    if (frame_ > 2 || do_integrate) {
        volume_->raycast(raycastVertex_, raycastNormal_,
                         scaledIntrinsics_, pose_, raycastParams(),
                         work, pool_.get());
        raycastPose_ = pose_;
        haveReference_ = true;
        result.raycast = true;
    }

    result.pose = pose_;
    totalWork_.merge(work);
    frameWork_.push_back(work);
    ++frame_;

    frames_counter.add(1);
    (result.integrated ? integrations_counter
                       : integration_skips_counter)
        .add(1);
    if (!result.tracking.tracked)
        lost_counter.add(1);
    frame_histogram.record(
        static_cast<double>(slambench::metrics::now_ns() - start_ns) *
        1e-9);
    return result;
}

void
KFusion::renderModel(support::Image<support::Rgb8> &out,
                     const Mat4f &view_pose,
                     const math::CameraIntrinsics *intrinsics)
{
    TRACE_SCOPE("render_model");
    WorkCounts work;
    volume_->renderVolume(out,
                          intrinsics ? *intrinsics : inputIntrinsics_,
                          view_pose, raycastParams(), work,
                          pool_.get());
    totalWork_.merge(work);
    if (!frameWork_.empty())
        frameWork_.back().merge(work);
}

void
KFusion::renderTrack(support::Image<support::Rgb8> &out) const
{
    out.resize(lastTrackData_.width(), lastTrackData_.height());
    for (size_t i = 0; i < lastTrackData_.size(); ++i) {
        switch (lastTrackData_[i].result) {
          case TrackResult::Ok:
            out[i] = {128, 128, 128};
            break;
          case TrackResult::NoInputVertex:
            out[i] = {0, 0, 0};
            break;
          case TrackResult::ProjectedOutside:
            out[i] = {255, 0, 0};
            break;
          case TrackResult::NoRefNormal:
            out[i] = {0, 0, 255};
            break;
          case TrackResult::TooFar:
            out[i] = {255, 255, 0};
            break;
          case TrackResult::NormalMismatch:
            out[i] = {255, 0, 255};
            break;
        }
    }
}

} // namespace slambench::kfusion
