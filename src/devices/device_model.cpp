#include "devices/device_model.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace slambench::devices {

const char *
deviceClassName(DeviceClass cls)
{
    switch (cls) {
      case DeviceClass::EmbeddedBoard: return "embedded";
      case DeviceClass::Flagship: return "flagship";
      case DeviceClass::HighEnd: return "high-end";
      case DeviceClass::MidRange: return "mid-range";
      case DeviceClass::LowEnd: return "low-end";
      case DeviceClass::Tablet: return "tablet";
    }
    return "?";
}

double
DeviceModel::kernelSeconds(KernelId id, const WorkCounts &work) const
{
    const size_t k = static_cast<size_t>(id);
    const double rate = itemsPerSecond[k];
    if (rate <= 0.0)
        support::panic("DeviceModel: zero throughput for kernel " +
                       std::string(kfusion::kernelName(id)));
    const double compute = work.items[k] / rate;
    const double memory = work.bytes[k] / memoryBandwidth;
    return std::max(compute, memory);
}

double
DeviceModel::frameSeconds(const WorkCounts &work) const
{
    double total = frameOverheadSeconds;
    for (size_t k = 0; k < kNumKernels; ++k)
        total += kernelSeconds(static_cast<KernelId>(k), work);
    return total;
}

double
DeviceModel::frameDynamicJoules(const WorkCounts &work) const
{
    double dynamic = 0.0;
    for (size_t k = 0; k < kNumKernels; ++k) {
        dynamic += work.items[k] * joulesPerItem[k];
        dynamic += work.bytes[k] * joulesPerByte;
    }
    return dynamic;
}

double
DeviceModel::frameJoules(const WorkCounts &work) const
{
    return frameDynamicJoules(work) + staticWatts * frameSeconds(work);
}

SimulatedRun
simulateRun(const DeviceModel &device,
            const std::vector<WorkCounts> &frames, double camera_fps)
{
    SimulatedRun run;
    run.frameSeconds.reserve(frames.size());
    const double camera_period =
        camera_fps > 0.0 ? 1.0 / camera_fps : 0.0;
    double paced_joules = 0.0;
    for (const WorkCounts &work : frames) {
        const double seconds = device.frameSeconds(work);
        run.frameSeconds.push_back(seconds);
        run.totalSeconds += seconds;
        run.maxFrameSeconds = std::max(run.maxFrameSeconds, seconds);
        run.totalJoules += device.frameJoules(work);

        // Camera-paced accounting: a fast device waits for the next
        // frame drawing static power; a slow one drops frames and
        // keeps computing.
        const double paced = std::max(seconds, camera_period);
        run.pacedSeconds += paced;
        paced_joules += device.frameDynamicJoules(work) +
                        device.staticWatts * paced;
    }
    if (!frames.empty()) {
        run.meanFrameSeconds =
            run.totalSeconds / static_cast<double>(frames.size());
        if (run.meanFrameSeconds > 0.0)
            run.meanFps = 1.0 / run.meanFrameSeconds;
        if (run.totalSeconds > 0.0)
            run.meanWatts = run.totalJoules / run.totalSeconds;
        if (run.pacedSeconds > 0.0)
            run.pacedWatts = paced_joules / run.pacedSeconds;
    }
    return run;
}

} // namespace slambench::devices
