#include "devices/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "support/rng.hpp"
#include "support/strings.hpp"

namespace slambench::devices {

namespace {

/** Kernel groups sharing a hardware affinity. */
enum class KernelGroup { Image, Track, Volume, Ray, Scalar };

KernelGroup
groupOf(KernelId id)
{
    switch (id) {
      case KernelId::Mm2Meters:
      case KernelId::BilateralFilter:
      case KernelId::HalfSample:
      case KernelId::Depth2Vertex:
      case KernelId::Vertex2Normal:
        return KernelGroup::Image;
      case KernelId::Track:
      case KernelId::Reduce:
        return KernelGroup::Track;
      case KernelId::Integrate:
        return KernelGroup::Volume;
      case KernelId::Raycast:
      case KernelId::RenderVolume:
        return KernelGroup::Ray;
      case KernelId::Solve:
      case KernelId::Count:
        return KernelGroup::Scalar;
    }
    return KernelGroup::Scalar;
}

/** XU3 reference per-kernel compute rates, items/second. */
std::array<double, kNumKernels>
referenceRates()
{
    std::array<double, kNumKernels> rates{};
    rates[static_cast<size_t>(KernelId::Mm2Meters)] = 4.0e8;
    rates[static_cast<size_t>(KernelId::BilateralFilter)] = 1.5e8;
    rates[static_cast<size_t>(KernelId::HalfSample)] = 3.0e8;
    rates[static_cast<size_t>(KernelId::Depth2Vertex)] = 3.0e8;
    rates[static_cast<size_t>(KernelId::Vertex2Normal)] = 2.5e8;
    rates[static_cast<size_t>(KernelId::Track)] = 8.0e7;
    rates[static_cast<size_t>(KernelId::Reduce)] = 2.0e8;
    rates[static_cast<size_t>(KernelId::Solve)] = 2.0e4;
    // Calibrated against visited-voxel items (frustum-culled
    // integration): fewer, heavier items than the old res^3 count.
    rates[static_cast<size_t>(KernelId::Integrate)] = 1.5e7;
    rates[static_cast<size_t>(KernelId::Raycast)] = 6.0e7;
    rates[static_cast<size_t>(KernelId::RenderVolume)] = 6.0e7;
    return rates;
}

/** XU3 reference per-kernel switching energy, joules/item. */
std::array<double, kNumKernels>
referenceEnergy()
{
    std::array<double, kNumKernels> e{};
    e[static_cast<size_t>(KernelId::Mm2Meters)] = 1.0e-9;
    e[static_cast<size_t>(KernelId::BilateralFilter)] = 2.0e-9;
    e[static_cast<size_t>(KernelId::HalfSample)] = 1.0e-9;
    e[static_cast<size_t>(KernelId::Depth2Vertex)] = 2.0e-9;
    e[static_cast<size_t>(KernelId::Vertex2Normal)] = 3.0e-9;
    e[static_cast<size_t>(KernelId::Track)] = 8.0e-9;
    e[static_cast<size_t>(KernelId::Reduce)] = 2.0e-9;
    e[static_cast<size_t>(KernelId::Solve)] = 2.0e-6;
    e[static_cast<size_t>(KernelId::Integrate)] = 2.4e-7;
    e[static_cast<size_t>(KernelId::Raycast)] = 1.4e-8;
    e[static_cast<size_t>(KernelId::RenderVolume)] = 1.4e-8;
    return e;
}

/** Per-class generation parameters. */
struct ClassSpec
{
    DeviceClass cls;
    const char *socFamily;
    size_t share;        ///< Devices of this class per 83.
    double computeLo;    ///< Compute scale range vs. XU3.
    double computeHi;
    double bwLo;         ///< Bandwidth scale range vs. XU3 (8 GB/s).
    double bwHi;
    double energyLo;     ///< Energy-per-item scale range vs. XU3.
    double energyHi;
    double staticLo;     ///< Static watts range.
    double staticHi;
    double memLo;        ///< App memory budget range, GB.
    double memHi;
    /** Relative strength per kernel group (Image/Track/Volume/Ray). */
    double groupBias[4];
};

const ClassSpec kClasses[] = {
    {DeviceClass::Flagship, "octa-2017", 12, 2.8, 5.0, 1.8, 2.8,
     0.45, 0.70, 0.25, 0.45, 2.0, 3.0, {1.1, 1.0, 0.8, 1.3}},
    {DeviceClass::HighEnd, "octa-2016", 18, 1.6, 3.0, 1.4, 2.2,
     0.60, 0.90, 0.25, 0.50, 1.5, 2.5, {1.0, 1.0, 0.9, 1.1}},
    {DeviceClass::MidRange, "hexa-2016", 28, 0.6, 1.6, 0.8, 1.4,
     0.85, 1.20, 0.30, 0.55, 0.8, 2.0, {1.0, 1.1, 1.1, 0.8}},
    {DeviceClass::LowEnd, "quad-2015", 15, 0.15, 0.60, 0.5, 0.9,
     1.10, 1.60, 0.30, 0.60, 0.1, 0.8, {1.1, 1.2, 1.4, 0.7}},
    {DeviceClass::Tablet, "quad-2014", 10, 0.4, 2.4, 0.7, 1.8,
     0.80, 1.40, 0.35, 0.70, 0.3, 2.5, {1.0, 0.9, 1.2, 1.2}},
};

double
groupBiasFor(const ClassSpec &spec, KernelId id)
{
    switch (groupOf(id)) {
      case KernelGroup::Image: return spec.groupBias[0];
      case KernelGroup::Track: return spec.groupBias[1];
      case KernelGroup::Volume: return spec.groupBias[2];
      case KernelGroup::Ray: return spec.groupBias[3];
      case KernelGroup::Scalar: return 1.0;
    }
    return 1.0;
}

/** Lognormal multiplicative jitter with sigma in log space. */
double
jitter(support::Rng &rng, double sigma)
{
    return std::exp(rng.normal(0.0, sigma));
}

} // namespace

DeviceModel
odroidXu3()
{
    DeviceModel model;
    model.name = "odroid-xu3";
    model.soc = "Exynos 5422 (4xA15 + 4xA7, Mali-T628 MP6)";
    model.deviceClass = DeviceClass::EmbeddedBoard;
    model.itemsPerSecond = referenceRates();
    model.memoryBandwidth = 8.0e9;
    model.frameOverheadSeconds = 2.0e-3;
    model.joulesPerItem = referenceEnergy();
    model.joulesPerByte = 4.0e-10;
    model.staticWatts = 0.15;
    model.memoryBudgetBytes = 1.5e9;
    return model;
}

std::vector<DeviceModel>
mobileFleet(size_t count, uint64_t seed)
{
    std::vector<DeviceModel> fleet;
    fleet.reserve(count);
    support::Rng rng(seed);

    const std::array<double, kNumKernels> base_rates = referenceRates();
    const std::array<double, kNumKernels> base_energy =
        referenceEnergy();

    // Total share across classes (83 by construction).
    size_t total_share = 0;
    for (const ClassSpec &spec : kClasses)
        total_share += spec.share;

    size_t made = 0;
    size_t class_index = 0;
    size_t in_class = 0;
    while (made < count) {
        const ClassSpec &spec =
            kClasses[class_index % std::size(kClasses)];
        // Allocate devices proportionally to the class share.
        const size_t class_quota = std::max<size_t>(
            1, (count * spec.share + total_share - 1) / total_share);
        if (in_class >= class_quota) {
            ++class_index;
            in_class = 0;
            continue;
        }
        ++in_class;

        DeviceModel model;
        model.deviceClass = spec.cls;
        model.soc = spec.socFamily;
        model.name = support::format(
            "phone-%s-%02zu", deviceClassName(spec.cls), in_class);
        if (spec.cls == DeviceClass::Tablet)
            model.name = support::format("tablet-%02zu", in_class);

        const double compute =
            rng.uniform(spec.computeLo, spec.computeHi);
        const double bw = rng.uniform(spec.bwLo, spec.bwHi);
        const double energy_scale =
            rng.uniform(spec.energyLo, spec.energyHi);

        for (size_t k = 0; k < kNumKernels; ++k) {
            const KernelId id = static_cast<KernelId>(k);
            model.itemsPerSecond[k] = base_rates[k] * compute *
                                      groupBiasFor(spec, id) *
                                      jitter(rng, 0.30);
            model.joulesPerItem[k] =
                base_energy[k] * energy_scale * jitter(rng, 0.10);
        }
        model.memoryBandwidth = 8.0e9 * bw * jitter(rng, 0.10);
        model.joulesPerByte = 4.0e-10 * energy_scale * jitter(rng, 0.10);
        model.staticWatts = rng.uniform(spec.staticLo, spec.staticHi);
        model.frameOverheadSeconds =
            rng.uniform(1.0e-3, 6.0e-3) / std::sqrt(compute);
        model.memoryBudgetBytes =
            rng.uniform(spec.memLo, spec.memHi) * 1e9;

        fleet.push_back(std::move(model));
        ++made;
    }
    return fleet;
}

} // namespace slambench::devices
