#ifndef SLAMBENCH_DEVICES_DEVICE_MODEL_HPP
#define SLAMBENCH_DEVICES_DEVICE_MODEL_HPP

/**
 * @file
 * Analytic performance/power models of target devices.
 *
 * The paper's evaluation platforms (Odroid-XU3 and 83 Android phones)
 * are hardware we cannot run here. Following the substitution rule in
 * DESIGN.md they are replaced by roofline-style analytic models: each
 * kernel's simulated runtime is the max of a compute term (work items
 * over the device's per-kernel rate) and a memory term (bytes over
 * the device's bandwidth); energy integrates a per-item switching
 * cost, a per-byte DRAM cost, and static power. Work items and bytes
 * come from the pipeline's exact WorkCounts, so all simulated numbers
 * are deterministic and monotone in the same quantities that drive
 * real devices.
 */

#include <array>
#include <string>
#include <vector>

#include "kfusion/work_counters.hpp"

namespace slambench::devices {

using kfusion::kNumKernels;
using kfusion::KernelId;
using kfusion::WorkCounts;

/** Market segment of a device (affects the fleet generator). */
enum class DeviceClass {
    EmbeddedBoard, ///< Developer boards (the Odroid-XU3).
    Flagship,      ///< Current-gen high-end phones.
    HighEnd,       ///< Previous-gen high-end phones.
    MidRange,      ///< Mainstream phones.
    LowEnd,        ///< Entry-level phones.
    Tablet,        ///< Large-screen devices, often older SoCs.
};

/** @return a printable name for a device class. */
const char *deviceClassName(DeviceClass cls);

/**
 * Roofline performance/power model of one device.
 */
struct DeviceModel
{
    std::string name;      ///< Unique device name.
    std::string soc;       ///< SoC description (informational).
    DeviceClass deviceClass = DeviceClass::MidRange;

    /**
     * Compute throughput per kernel, items/second, at this device's
     * accelerator (GPU or multicore CPU, whichever the OpenCL build
     * would use).
     */
    std::array<double, kNumKernels> itemsPerSecond{};

    /** Sustained memory bandwidth, bytes/second. */
    double memoryBandwidth = 8e9;

    /** Fixed per-frame dispatch/driver overhead, seconds. */
    double frameOverheadSeconds = 2e-3;

    /** Dynamic switching energy per work item, joules (per kernel). */
    std::array<double, kNumKernels> joulesPerItem{};

    /** DRAM traffic energy, joules per byte. */
    double joulesPerByte = 1e-9;

    /** Static (leakage + rail) power attributed to the run, watts. */
    double staticWatts = 0.3;

    /**
     * Peak memory available to the application, bytes. Configurations
     * whose TSDF volume exceeds it do not run (matches phones that
     * failed to run large volumes in the crowdsourced study).
     */
    double memoryBudgetBytes = 1e9;

    /**
     * Simulated execution time of one frame's work.
     *
     * @param work Per-frame work counts.
     * @return seconds.
     */
    double frameSeconds(const WorkCounts &work) const;

    /**
     * Simulated dynamic + static energy of one frame's work.
     *
     * @param work Per-frame work counts.
     * @return joules (includes static power over frameSeconds).
     */
    double frameJoules(const WorkCounts &work) const;

    /** Dynamic (switching + DRAM) energy only, joules. */
    double frameDynamicJoules(const WorkCounts &work) const;

    /** Simulated seconds spent in one kernel for @p work. */
    double kernelSeconds(KernelId id, const WorkCounts &work) const;
};

/** Simulated run summary on a device. */
struct SimulatedRun
{
    double totalSeconds = 0.0;  ///< Sum of frame times.
    double meanFrameSeconds = 0.0;
    double maxFrameSeconds = 0.0;
    double totalJoules = 0.0;
    double meanWatts = 0.0;     ///< totalJoules / totalSeconds.
    double meanFps = 0.0;
    /**
     * Power when the pipeline is paced by the camera: a device
     * faster than the sensor rate idles (drawing static power only)
     * until the next frame arrives. This is the deployment-relevant
     * power the paper's 1 W budget refers to; meanWatts is the
     * batch-replay (as fast as possible) figure.
     */
    double pacedWatts = 0.0;
    double pacedSeconds = 0.0;  ///< Wall time at the camera rate.
    /** Simulated seconds per frame. */
    std::vector<double> frameSeconds;
};

/**
 * Replay a run's per-frame work counts through a device model.
 *
 * @param device Target device.
 * @param frames Per-frame work counts from a pipeline run.
 * @param camera_fps Sensor rate used for the paced-power figure.
 * @return simulated timing and energy summary.
 */
SimulatedRun simulateRun(const DeviceModel &device,
                         const std::vector<WorkCounts> &frames,
                         double camera_fps = 30.0);

} // namespace slambench::devices

#endif // SLAMBENCH_DEVICES_DEVICE_MODEL_HPP
