#ifndef SLAMBENCH_DEVICES_FLEET_HPP
#define SLAMBENCH_DEVICES_FLEET_HPP

/**
 * @file
 * Concrete device models: the Odroid-XU3 reference board and the
 * procedurally generated fleet of 83 phones/tablets used to
 * reproduce the crowdsourced evaluation (Fig. 3 of the paper).
 */

#include <cstdint>
#include <vector>

#include "devices/device_model.hpp"

namespace slambench::devices {

/**
 * Analytic model of the Odroid-XU3 (Exynos 5422: 4x A15 + 4x A7 +
 * Mali-T628 MP6, 2 GB LPDDR3), the paper's embedded target.
 *
 * Calibrated so that the default KinectFusion configuration on the
 * living-room sequence lands in the paper's regime (a few FPS at
 * roughly 3 W) and kernel-time ordering matches published SLAMBench
 * profiles (integrate > raycast > bilateral filter > tracking).
 */
DeviceModel odroidXu3();

/**
 * Generate the simulated phone/tablet fleet.
 *
 * Devices span five market segments with per-device lognormal
 * jitter on every kernel's throughput, on bandwidth, and on energy
 * coefficients; the mix (and the resulting spread of tuned-vs-default
 * speed-ups) imitates the 83-device crowdsourced population.
 *
 * @param count Number of devices (83 reproduces the paper).
 * @param seed Seed for the deterministic generator.
 * @return device models, deterministic given (count, seed).
 */
std::vector<DeviceModel> mobileFleet(size_t count = 83,
                                     uint64_t seed = 2018);

} // namespace slambench::devices

#endif // SLAMBENCH_DEVICES_FLEET_HPP
