#ifndef SLAMBENCH_SUPPORT_TELEMETRY_SERVER_HPP
#define SLAMBENCH_SUPPORT_TELEMETRY_SERVER_HPP

/**
 * @file
 * In-process telemetry exposition: a tiny blocking HTTP/1.0 server
 * on a background thread serving live process state, plus the
 * TelemetryEndpoint RAII wrapper the benches construct from their
 * `--telemetry-port` / `--crash-dump` / `--slo-*` flags.
 *
 * Endpoints (all GET, Connection: close):
 *  - `/metrics`  Prometheus text exposition (format 0.0.4) rendered
 *                from the process metrics::Registry.
 *  - `/healthz`  200 "ok" while no SLO is breached, 503 with one
 *                "breach: ..." line per latched breach after.
 *  - `/runz`     Run-report JSON snapshot of the in-flight
 *                RunSession (404 when no session is active).
 *
 * The server exists only when started: with `--telemetry-port`
 * unset, no socket is opened and no thread is spawned, and the
 * frame-loop hooks stay behind single relaxed-atomic gates
 * (telemetry::liveTelemetry()), keeping disabled runs zero-cost.
 */

#include <atomic>
#include <iosfwd>
#include <string>
#include <thread>

#include "support/slo_watchdog.hpp"

namespace slambench::support::telemetry {

/**
 * @return @p name mapped onto the Prometheus metric-name alphabet
 * `[a-zA-Z0-9_:]`: every other character (registry names use `.`)
 * becomes `_`, and a leading digit gets a `_` prefix.
 */
std::string sanitizeMetricName(const std::string &name);

/**
 * @return @p value with backslash, double-quote, and newline escaped
 * per the Prometheus text-format label-value rules.
 */
std::string escapeLabelValue(const std::string &value);

/**
 * Build a registry metric name carrying one exposition label:
 * `family{key="value"}` with @p value escaped per the label-value
 * rules. renderPrometheus() recognizes the brace form, sanitizes
 * only the family part, emits one HELP/TYPE header per family, and
 * renders the label block on every sample — this is how the serve
 * layer gets per-tenant `/metrics` series out of the flat registry
 * (e.g. `serve.tenant.frames{tenant="t03"}`).
 */
std::string labeledMetricName(const std::string &family,
                              const std::string &key,
                              const std::string &value);

/**
 * Render the whole metrics::Registry as Prometheus text exposition
 * format 0.0.4 to @p os: each counter as `<name>_total`, each gauge
 * verbatim, each histogram as cumulative `_bucket{le="..."}` series
 * (empty buckets elided) plus `_sum` and `_count`, all preceded by
 * `# HELP` / `# TYPE` lines.
 */
void renderPrometheus(std::ostream &os);

/**
 * Serve one HTTP/1.0 exchange on @p client_fd (request already
 * accepted; the fd is not closed here). This is the connection
 * handler behind TelemetryServer, exposed so the socket-path
 * regression tests can drive it over a socketpair:
 *
 *  - the request line is read in a loop until CRLF (a slow or
 *    segmented client parses identically to a one-shot one), bounded
 *    by a 4 KiB buffer and @p read_deadline_ms;
 *  - EINTR during poll/read/send is retried, never treated as a
 *    dropped connection;
 *  - the response is written with `send(MSG_NOSIGNAL)`, so a client
 *    that disconnects mid-response yields EPIPE instead of a fatal
 *    SIGPIPE.
 *
 * Oversize (no CRLF within the buffer) and timed-out requests get a
 * 400 where a line was partially read, or nothing when no bytes
 * arrived.
 */
void serveConnection(int client_fd, int read_deadline_ms = 2000);

namespace detail {

/**
 * Write all @p len bytes to @p fd via send(MSG_NOSIGNAL), retrying
 * on EINTR and short writes.
 *
 * @return whether every byte was accepted (false on EPIPE /
 *         ECONNRESET / any other real error — never raises SIGPIPE).
 */
bool sendAll(int fd, const char *data, size_t len);

/**
 * Read from @p fd into @p request until it contains a CRLF, @p
 * max_len bytes were read, EOF, or @p deadline_ms expired; EINTR
 * during poll/read is retried without consuming deadline accounting
 * resolution.
 *
 * @return whether a full CRLF-terminated request line was received.
 */
bool readRequestLine(int fd, std::string &request, size_t max_len,
                     int deadline_ms);

} // namespace detail

/**
 * Blocking HTTP/1.0 exposition server on a background thread.
 *
 * One request per connection, served sequentially — the expected
 * client is a scrape loop or a human with curl, not traffic. The
 * accept loop polls with a 200 ms timeout so stop() completes
 * promptly. Serving reads shared state only through thread-safe
 * snapshots (Registry accessors, SloWatchdog, RunSession's
 * current-session lock), so it never blocks the frame loop.
 */
class TelemetryServer
{
  public:
    TelemetryServer() = default;

    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /** Stops the server if running. */
    ~TelemetryServer();

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), start the serving
     * thread.
     *
     * @return whether the socket was bound and the thread started;
     *         on failure the server stays stopped.
     */
    bool start(int port);

    /** Join the serving thread and close the socket (idempotent). */
    void stop();

    /** @return the bound port (the actual one when started with 0),
     *  or -1 while stopped. */
    int
    port() const
    {
        return port_;
    }

    /** @return whether the serving thread is running. */
    bool
    running() const
    {
        return thread_.joinable();
    }

  private:
    void serveLoop();

    int listenFd_ = -1;
    int port_ = -1;
    std::atomic<bool> stopRequested_{false};
    std::thread thread_;
};

/** Parsed live-telemetry configuration of one bench invocation. */
struct TelemetryOptions
{
    /** `--telemetry-port`: -1 = no server, 0 = ephemeral port. */
    int port = -1;
    /** `--crash-dump`: dump path ("" = `<generator>_crash.json`
     *  when telemetry is active). */
    std::string crashDumpPath;
    /** `--slo-*` thresholds (all disabled by default). */
    SloThresholds slo;
    /** `--recorder-slots`: flight-recorder ring capacity (applied
     *  at activation, before recording starts). */
    size_t recorderSlots = 1024;
    /** Producing binary's name (server log line, crash dump). */
    std::string generator;

    /** @return whether any live-telemetry feature is requested. */
    bool
    any() const
    {
        return port >= 0 || !crashDumpPath.empty() ||
               slo.anyEnabled();
    }
};

/**
 * RAII activation of the live-telemetry subsystem for one run: arms
 * the per-frame hook (setLiveTelemetry), the flight recorder and
 * fatal-signal crash dump, and the SLO watchdog, and starts the
 * exposition server when a port was requested (logging
 * "telemetry: listening on http://127.0.0.1:<port>" at INFO). A
 * default-constructed endpoint — or one built from options where
 * TelemetryOptions::any() is false — does nothing at all. The
 * destructor stops the server and disarms the hook and watchdog.
 */
class TelemetryEndpoint
{
  public:
    /** Inert endpoint (telemetry stays disabled). */
    TelemetryEndpoint() = default;

    /** Activate per @p options (no-op when options.any() is false).
     *  Exits via fatal() when a requested port cannot be bound. */
    explicit TelemetryEndpoint(const TelemetryOptions &options);

    TelemetryEndpoint(const TelemetryEndpoint &) = delete;
    TelemetryEndpoint &operator=(const TelemetryEndpoint &) = delete;

    /** Stops the server and disarms live telemetry. */
    ~TelemetryEndpoint();

    /** @return whether any telemetry feature was activated. */
    bool active() const { return active_; }

    /** @return the server's bound port, or -1 when no server. */
    int port() const { return server_.port(); }

  private:
    bool active_ = false;
    TelemetryServer server_;
};

} // namespace slambench::support::telemetry

#endif // SLAMBENCH_SUPPORT_TELEMETRY_SERVER_HPP
