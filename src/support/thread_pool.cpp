#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "metrics/timing.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace slambench::support {

namespace {

// Registry of live pools for ThreadPool::forEachPool. Function-local
// statics avoid init-order issues with pools constructed during
// static initialization.
std::mutex &
poolRegistryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::vector<ThreadPool *> &
poolRegistry()
{
    static std::vector<ThreadPool *> pools;
    return pools;
}

} // namespace

ThreadPool::ThreadPool(size_t num_threads)
{
    size_t n = num_threads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    threads_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
    {
        std::lock_guard<std::mutex> lock(poolRegistryMutex());
        poolRegistry().push_back(this);
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(poolRegistryMutex());
        auto &pools = poolRegistry();
        pools.erase(std::remove(pools.begin(), pools.end(), this),
                    pools.end());
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::enqueue(TaskGroup &group, std::function<void()> task,
                    const char *trace_name)
{
    Task entry;
    entry.fn = std::move(task);
    entry.group = &group;
    entry.traceName = trace_name;
#if SLAMBENCH_TRACE_ENABLED
    // Carry the submitter's request context across the queue so the
    // worker's spans attach to the right trace (one relaxed load
    // when request tracing is disarmed).
    if (trace::requestTracingArmed())
        entry.requestContext = trace::currentTraceContext();
#endif
    entry.enqueuedAt = std::chrono::steady_clock::now();
    group.pending_.fetch_add(1, std::memory_order_acq_rel);
    queueDepth_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(entry));
    }
    wake_.notify_one();
    // A waiter blocked on done_ may steal this task cooperatively.
    done_.notify_one();
}

void
ThreadPool::submit(TaskGroup &group, std::function<void()> task)
{
    const char *trace_name = nullptr;
#if SLAMBENCH_TRACE_ENABLED
    // Attribute worker-side execution to the span open at submission
    // (e.g. the DSE driver's scope on the submitting thread). PMU
    // profiling needs the same attribution for its counter spans.
    if (trace::Tracer::instance().enabled() || pmu::enabled())
        trace_name = trace::currentSpanName();
#endif
    enqueue(group, std::move(task), trace_name);
}

void
ThreadPool::execute(Task task)
{
    const size_t active =
        activeTasks_.fetch_add(1, std::memory_order_relaxed) + 1;
    size_t peak = peakActive_.load(std::memory_order_relaxed);
    while (active > peak &&
           !peakActive_.compare_exchange_weak(
               peak, active, std::memory_order_relaxed)) {
    }

    // Queue stall vs. execute time, so saturation shows up directly
    // instead of only through the SLO watchdog's depth sampling.
    // Recorded in milliseconds (the _ms suffix; the histogram's
    // buckets are unit-agnostic). Registry handles are
    // process-stable, so cache them.
    static metrics::LatencyHistogram &queue_wait_hist =
        metrics::Registry::instance().histogram(
            "pool.task.queue_wait_ms");
    static metrics::LatencyHistogram &run_hist =
        metrics::Registry::instance().histogram("pool.task.run_ms");
    const auto start = std::chrono::steady_clock::now();
    queue_wait_hist.record(
        std::chrono::duration<double>(start - task.enqueuedAt)
            .count() * 1e3);

#if SLAMBENCH_TRACE_ENABLED
    // Reinstate the submitter's request context for the task body
    // (no-op for an inactive context), and make the time the task
    // sat queued visible in its trace as a queue_wait span ending
    // where execution starts.
    trace::ScopedTraceContext request_scope(task.requestContext);
    if (task.requestContext.active() &&
        trace::requestTracingArmed()) {
        auto &request_tracer = trace::RequestTracer::instance();
        trace::RequestSpan wait_span;
        wait_span.spanId = request_tracer.nextSpanId();
        wait_span.parentSpanId = task.requestContext.spanId;
        wait_span.name = "queue_wait";
        wait_span.cat = trace::Category::Worker;
        wait_span.endNs = slambench::metrics::now_ns();
        const uint64_t wait_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                start - task.enqueuedAt)
                .count());
        wait_span.startNs = wait_span.endNs > wait_ns
                                ? wait_span.endNs - wait_ns
                                : 0;
        request_tracer.addSpan(task.requestContext.traceId,
                               wait_span);
    }
    if (task.traceName) {
        trace::ScopedSpan span(task.traceName,
                               trace::Category::Worker);
        task.fn();
    } else
#endif
    {
        task.fn();
    }

    run_hist.record(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count() * 1e3);

    activeTasks_.fetch_sub(1, std::memory_order_relaxed);
    tasksExecuted_.fetch_add(1, std::memory_order_relaxed);
    if (task.group->pending_.fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
        // The (empty) critical section orders this notify after any
        // waiter's predicate check in wait(): the predicate runs under
        // mutex_, and done_.wait() releases the lock atomically with
        // blocking, so once we have acquired mutex_ a waiter that saw
        // pending != 0 is already blocked and receives the notify.
        // Without the lock, the decrement + notify could land between
        // a waiter's predicate check and its block, losing the wakeup.
        { std::lock_guard<std::mutex> lock(mutex_); }
        done_.notify_all();
    }
}

bool
ThreadPool::tryRunOneTask(TaskGroup *prefer)
{
    Task task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        auto it = queue_.begin();
        if (prefer) {
            // Serve the waited-on group's own tasks first so a
            // latency-sensitive waiter is not detained by a long
            // unrelated task when its own work is still queued.
            const auto own = std::find_if(
                queue_.begin(), queue_.end(),
                [prefer](const Task &t) { return t.group == prefer; });
            if (own != queue_.end())
                it = own;
        }
        task = std::move(*it);
        queue_.erase(it);
        queueDepth_.fetch_sub(1, std::memory_order_relaxed);
    }
    execute(std::move(task));
    return true;
}

void
ThreadPool::wait(TaskGroup &group)
{
    for (;;) {
        if (group.pending() == 0)
            return;
        // Cooperative draining: run queued tasks — the waited group's
        // own first, then any other group's — so a nested region on a
        // saturated pool cannot deadlock and a 1-thread pool makes
        // progress on the caller's thread. Draining foreign tasks
        // means a waiter can execute an unrelated long task (e.g. a
        // whole DSE pipeline evaluation) before returning; that
        // latency cost is the price of deadlock freedom.
        if (tryRunOneTask(&group))
            continue;
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this, &group] {
            return group.pending() == 0 || !queue_.empty();
        });
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &body)
{
    const std::function<void(size_t, size_t)> chunked =
        [&body](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i)
                body(i);
        };
    parallelForChunked(begin, end, chunked);
}

void
ThreadPool::parallelForChunked(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t)> &body)
{
    if (begin >= end)
        return;

    const size_t count = end - begin;
    // Aim for ~4 chunks per worker to absorb imbalance without
    // excessive dispatch overhead.
    const size_t target_chunks = std::max<size_t>(threads_.size() * 4, 1);
    const size_t chunk = std::max<size_t>(1, count / target_chunks);
    const size_t num_chunks = (count + chunk - 1) / chunk;

    // Chunks are claimed from a shared cursor by up to
    // numThreads() runner tasks plus the caller, which participates
    // directly: a 1-thread pool (or a pool busy with other work)
    // still makes forward progress on the calling thread.
    struct LoopState
    {
        std::atomic<size_t> next;
        size_t end;
        size_t chunk;
        const std::function<void(size_t, size_t)> *body;
        const char *traceName;
    };
    LoopState state{{begin}, end, chunk, &body, nullptr};
#if SLAMBENCH_TRACE_ENABLED
    // Attribute every chunk (caller- or worker-run) to the span that
    // dispatched the loop (e.g. a KernelTimer's kernel span). PMU
    // profiling rides the same Worker spans for counter attribution.
    if (trace::Tracer::instance().enabled() || pmu::enabled())
        state.traceName = trace::currentSpanName();
#endif

    const auto run_chunks = [&state] {
        for (;;) {
            const size_t lo = state.next.fetch_add(
                state.chunk, std::memory_order_relaxed);
            if (lo >= state.end)
                return;
            const size_t hi = std::min(state.end, lo + state.chunk);
#if SLAMBENCH_TRACE_ENABLED
            if (state.traceName) {
                trace::ScopedSpan chunk_span(state.traceName,
                                             trace::Category::Worker);
                (*state.body)(lo, hi);
                continue;
            }
#endif
            (*state.body)(lo, hi);
        }
    };

    // state outlives the runners: wait() below returns only once
    // every submitted runner has finished.
    TaskGroup group;
    const size_t helpers = std::min(threads_.size(), num_chunks - 1);
    for (size_t i = 0; i < helpers; ++i)
        enqueue(group, run_chunks, nullptr);
    run_chunks();
    wait(group);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ and nothing left to drain.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            queueDepth_.fetch_sub(1, std::memory_order_relaxed);
        }
        execute(std::move(task));
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::forEachPool(
    const std::function<void(const ThreadPool &)> &fn)
{
    std::lock_guard<std::mutex> lock(poolRegistryMutex());
    for (const ThreadPool *pool : poolRegistry())
        fn(*pool);
}

} // namespace slambench::support
