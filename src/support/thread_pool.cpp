#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/trace.hpp"

namespace slambench::support {

ThreadPool::ThreadPool(size_t num_threads)
{
    size_t n = num_threads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    threads_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &body)
{
    const std::function<void(size_t, size_t)> chunked =
        [&body](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i)
                body(i);
        };
    parallelForChunked(begin, end, chunked);
}

void
ThreadPool::parallelForChunked(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t)> &body)
{
    if (begin >= end)
        return;

    const size_t count = end - begin;
    // Aim for ~4 chunks per worker to absorb imbalance without
    // excessive dispatch overhead.
    const size_t target_chunks = std::max<size_t>(threads_.size() * 4, 1);
    const size_t chunk = std::max<size_t>(1, count / target_chunks);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (jobActive_)
            panic("ThreadPool::parallelFor: nested parallel regions "
                  "are not supported");
        job_.begin = begin;
        job_.end = end;
        job_.chunk = chunk;
        job_.body = &body;
        job_.next = begin;
        job_.remainingChunks = (count + chunk - 1) / chunk;
#if SLAMBENCH_TRACE_ENABLED
        // Attribute worker-side chunks to the span that dispatched
        // them (e.g. a KernelTimer's kernel span on the caller).
        job_.traceName = trace::Tracer::instance().enabled()
                             ? trace::currentSpanName()
                             : nullptr;
#else
        job_.traceName = nullptr;
#endif
        jobActive_ = true;
        ++generation_;
    }
    wake_.notify_all();

    // The caller participates too, so a 1-thread pool still makes
    // forward progress even if the worker is descheduled.
    runChunks(job_);

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return job_.remainingChunks == 0; });
    jobActive_ = false;
}

void
ThreadPool::runChunks(Job &job)
{
    for (;;) {
        size_t lo, hi;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (job.next >= job.end)
                return;
            lo = job.next;
            hi = std::min(job.end, lo + job.chunk);
            job.next = hi;
        }
#if SLAMBENCH_TRACE_ENABLED
        if (job.traceName) {
            trace::ScopedSpan chunk_span(job.traceName,
                                         trace::Category::Worker);
            (*job.body)(lo, hi);
        } else
#endif
        {
            (*job.body)(lo, hi);
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--job.remainingChunks == 0) {
                done_.notify_all();
                return;
            }
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return stopping_ || (jobActive_ && generation_ != seen);
            });
            if (stopping_)
                return;
            seen = generation_;
        }
        runChunks(job_);
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace slambench::support
