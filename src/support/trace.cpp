#include "support/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>

#include "metrics/timing.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"

namespace slambench::support::trace {

namespace {

/**
 * Per-thread stack of open span names backing currentSpanName(),
 * which the thread pool uses for worker-chunk attribution.
 */
thread_local std::vector<const char *> t_span_stack;

/** Append @p s to @p out with JSON string escaping. */
void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        const char c = *s;
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::Kernel: return "kernel";
      case Category::Phase: return "phase";
      case Category::Worker: return "worker";
      case Category::Counter: return "counter";
      case Category::Marker: return "marker";
    }
    return "unknown";
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &buffer : buffers_)
        buffer->events.clear();
    frame_.store(0, std::memory_order_relaxed);
    epoch_ = std::chrono::steady_clock::now();
}

void
Tracer::setFrame(uint64_t frame)
{
    frame_.store(frame, std::memory_order_relaxed);
    record("frame", Category::Marker, 'i',
           static_cast<double>(frame));
}

void
Tracer::beginSpan(const char *name, Category cat)
{
    record(name, cat, 'B', 0.0);
}

void
Tracer::endSpan(const char *name, Category cat)
{
    record(name, cat, 'E', 0.0);
}

void
Tracer::counter(const char *name, double value)
{
    record(name, Category::Counter, 'C', value);
}

Tracer::ThreadBuffer &
Tracer::localBuffer()
{
    // The registry owns the buffer so recorded events outlive the
    // recording thread (worker pools are destroyed before export).
    static thread_local ThreadBuffer *buffer = nullptr;
    if (!buffer) {
        auto owned = std::make_unique<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(mutex_);
        owned->tid = static_cast<uint32_t>(buffers_.size());
        buffer = owned.get();
        buffers_.push_back(std::move(owned));
    }
    return *buffer;
}

void
Tracer::record(const char *name, Category cat, char phase,
               double value)
{
    const auto now = std::chrono::steady_clock::now();
    Event event;
    event.name = name;
    event.tsNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             epoch_)
            .count());
    event.frame = frame_.load(std::memory_order_relaxed);
    event.value = value;
    event.cat = cat;
    event.phase = phase;
    localBuffer().events.push_back(event);
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    for (const auto &buffer : buffers_)
        count += buffer->events.size();
    return count;
}

size_t
Tracer::threadCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    for (const auto &buffer : buffers_)
        count += !buffer->events.empty();
    return count;
}

std::vector<std::vector<Event>>
Tracer::eventsByThread() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::vector<Event>> out;
    out.reserve(buffers_.size());
    for (const auto &buffer : buffers_)
        out.push_back(buffer->events);
    return out;
}

std::vector<FrameKernelTotal>
Tracer::frameKernelTotals() const
{
    // Spans are RAII, so begins and ends nest per thread: pair them
    // with a per-thread stack and attribute the duration to the
    // frame the span *began* in.
    std::map<std::pair<uint64_t, std::string>,
             std::pair<size_t, double>>
        totals;
    for (const auto &events : eventsByThread()) {
        std::vector<const Event *> stack;
        for (const Event &event : events) {
            if (event.phase == 'B') {
                stack.push_back(&event);
            } else if (event.phase == 'E' && !stack.empty()) {
                const Event *begin = stack.back();
                stack.pop_back();
                if (begin->cat != Category::Kernel)
                    continue;
                auto &slot =
                    totals[{begin->frame, begin->name}];
                slot.first += 1;
                slot.second +=
                    static_cast<double>(event.tsNs - begin->tsNs) *
                    1e-9;
            }
        }
    }
    std::vector<FrameKernelTotal> out;
    out.reserve(totals.size());
    for (const auto &[key, value] : totals)
        out.push_back({key.first, key.second, value.first,
                       value.second});
    return out;
}

std::vector<KernelTotal>
Tracer::kernelTotals() const
{
    std::map<std::string, std::pair<size_t, double>> totals;
    for (const FrameKernelTotal &t : frameKernelTotals()) {
        auto &slot = totals[t.name];
        slot.first += t.spans;
        slot.second += t.seconds;
    }
    std::vector<KernelTotal> out;
    out.reserve(totals.size());
    for (const auto &[name, value] : totals)
        out.push_back({name, value.first, value.second});
    return out;
}

void
Tracer::writeChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char buf[64];
    const auto by_thread = eventsByThread();
    for (size_t tid = 0; tid < by_thread.size(); ++tid) {
        for (const Event &event : by_thread[tid]) {
            if (!first)
                os << ",";
            first = false;
            std::string line = "\n{\"name\":\"";
            appendEscaped(line, event.name);
            line += "\",\"cat\":\"";
            line += categoryName(event.cat);
            line += "\",\"ph\":\"";
            line += event.phase;
            line += "\",\"ts\":";
            std::snprintf(buf, sizeof(buf), "%.3f",
                          static_cast<double>(event.tsNs) * 1e-3);
            line += buf;
            line += ",\"pid\":1,\"tid\":";
            std::snprintf(buf, sizeof(buf), "%zu", tid);
            line += buf;
            if (event.phase == 'i')
                line += ",\"s\":\"g\"";
            if (event.phase == 'C') {
                std::snprintf(buf, sizeof(buf),
                              ",\"args\":{\"value\":%.17g}",
                              event.value);
                line += buf;
            } else {
                std::snprintf(buf, sizeof(buf),
                              ",\"args\":{\"frame\":%llu}",
                              static_cast<unsigned long long>(
                                  event.frame));
                line += buf;
            }
            line += "}";
            os << line;
        }
    }
    os << "\n]}\n";
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeChromeJson(os);
    return static_cast<bool>(os);
}

void
Tracer::writeFrameCsv(std::ostream &os) const
{
    os << "frame,kernel,spans,host_ms\n";
    char buf[64];
    for (const FrameKernelTotal &t : frameKernelTotals()) {
        std::snprintf(buf, sizeof(buf), "%.6f", t.seconds * 1e3);
        os << t.frame << "," << t.name << "," << t.spans << ","
           << buf << "\n";
    }
}

bool
Tracer::writeFrameCsv(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeFrameCsv(os);
    return static_cast<bool>(os);
}

const char *
currentSpanName()
{
    return t_span_stack.empty() ? nullptr : t_span_stack.back();
}

namespace detail {

void
pushCurrentSpan(const char *name)
{
    t_span_stack.push_back(name);
}

void
popCurrentSpan()
{
    if (!t_span_stack.empty())
        t_span_stack.pop_back();
}

} // namespace detail

// --- Request tracing ---------------------------------------------

namespace {

/** This thread's installed request context (inactive by default). */
thread_local TraceContext t_request_ctx;

/**
 * SplitMix64 finalizer: a bijective 64-bit mix. Used both to derive
 * well-spread trace ids from a sequence counter and to turn a trace
 * id into the uniform variate behind the sampling decision — keeping
 * retention deterministic per id (no global RNG state, no rand()).
 */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** @return a uniform [0,1) variate derived from @p trace_id. */
double
sampleFraction(uint64_t trace_id)
{
    // Top 53 bits -> exactly representable double in [0, 1).
    return static_cast<double>(mix64(trace_id) >> 11) * 0x1.0p-53;
}

} // namespace

namespace detail {

std::atomic<bool> g_request_tracing{false};

bool
beginRequestSpan(uint64_t *span_id, uint64_t *parent_id,
                 uint64_t *start_ns)
{
    if (!t_request_ctx.active())
        return false;
    *parent_id = t_request_ctx.spanId;
    *span_id = RequestTracer::instance().nextSpanId();
    *start_ns = slambench::metrics::now_ns();
    t_request_ctx.spanId = *span_id;
    return true;
}

void
endRequestSpan(const char *name, Category cat, uint64_t span_id,
               uint64_t parent_id, uint64_t start_ns)
{
    // The owning ScopedSpan is strictly nested inside the installing
    // ScopedTraceContext, so the context is still this trace's.
    t_request_ctx.spanId = parent_id;
    RequestSpan span;
    span.spanId = span_id;
    span.parentSpanId = parent_id;
    span.name = name;
    span.cat = cat;
    span.startNs = start_ns;
    span.endNs = slambench::metrics::now_ns();
    RequestTracer::instance().addSpan(t_request_ctx.traceId, span);
}

} // namespace detail

TraceContext
currentTraceContext()
{
    return t_request_ctx;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext &ctx)
{
    if (!ctx.active())
        return;
    prev_ = t_request_ctx;
    t_request_ctx = ctx;
    installed_ = true;
    setLogTraceId(ctx.traceId);
}

ScopedTraceContext::~ScopedTraceContext()
{
    if (!installed_)
        return;
    t_request_ctx = prev_;
    setLogTraceId(prev_.traceId);
}

std::string
formatTraceId(uint64_t trace_id)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(trace_id));
    return buf;
}

uint64_t
parseTraceId(const std::string &text)
{
    size_t i = 0;
    if (text.size() > 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X'))
        i = 2;
    if (i >= text.size() || text.size() - i > 16)
        return 0;
    uint64_t value = 0;
    for (; i < text.size(); ++i) {
        const char c = text[i];
        uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint64_t>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            digit = static_cast<uint64_t>(c - 'A') + 10;
        else
            return 0;
        value = (value << 4) | digit;
    }
    return value;
}

RequestTracer &
RequestTracer::instance()
{
    static RequestTracer tracer;
    return tracer;
}

void
RequestTracer::configure(const RequestTraceOptions &options)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        options_ = options;
        if (options_.sampleRate < 0.0)
            options_.sampleRate = 0.0;
        if (options_.maxRetained == 0)
            options_.maxRetained = 1;
        if (options_.maxInflight == 0)
            options_.maxInflight = 1;
        inflight_.clear();
        inflightOrder_.clear();
        retained_.clear();
        exemplars_.clear();
        tracesStarted_ = 0;
        tracesRetained_ = 0;
        // Seed the id stream from the monotonic clock so ids differ
        // across runs; ids within a run are a mixed counter.
        idSeed_ = slambench::metrics::now_ns();
    }
    detail::g_request_tracing.store(true,
                                    std::memory_order_relaxed);
}

void
RequestTracer::disarm()
{
    detail::g_request_tracing.store(false,
                                    std::memory_order_relaxed);
}

void
RequestTracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.clear();
    inflightOrder_.clear();
    retained_.clear();
    exemplars_.clear();
    tracesStarted_ = 0;
    tracesRetained_ = 0;
}

RequestTraceOptions
RequestTracer::options() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return options_;
}

TraceContext
RequestTracer::begin(const std::string &tenant, uint64_t frame)
{
    if (!enabled())
        return {};
    static metrics::Counter &started_counter =
        metrics::Registry::instance().counter(
            "trace.requests.started");

    TraceContext ctx;
    const uint64_t seq =
        nextTraceSeq_.fetch_add(1, std::memory_order_relaxed) + 1;
    ctx.spanId = nextSpanId();

    RetainedTrace trace;
    trace.rootSpanId = ctx.spanId;
    trace.tenant = tenant;
    trace.frame = frame;
    trace.startNs = slambench::metrics::now_ns();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        uint64_t id = mix64(seq ^ idSeed_);
        if (id == 0)
            id = 1;
        ctx.traceId = id;
        trace.traceId = id;
        ++tracesStarted_;
        // Bound the in-flight set: a trace whose finish() never runs
        // (evicted here) simply drops its spans on addSpan().
        while (inflightOrder_.size() >= options_.maxInflight) {
            inflight_.erase(inflightOrder_.front());
            inflightOrder_.pop_front();
        }
        inflightOrder_.push_back(id);
        inflight_.emplace(id, std::move(trace));
    }
    started_counter.add();
    return ctx;
}

void
RequestTracer::addSpan(uint64_t trace_id, const RequestSpan &span)
{
    if (trace_id == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = inflight_.find(trace_id);
    if (it == inflight_.end())
        return;
    if (it->second.spans.size() >= options_.maxSpansPerTrace) {
        ++it->second.spansDropped;
        return;
    }
    it->second.spans.push_back(span);
}

void
RequestTracer::finish(const TraceContext &ctx,
                      const RequestTraceFinish &finish)
{
    if (!ctx.active())
        return;
    static metrics::Counter &retained_counter =
        metrics::Registry::instance().counter(
            "trace.requests.retained");
    static metrics::Counter &dropped_counter =
        metrics::Registry::instance().counter(
            "trace.requests.dropped");
    const uint64_t end_ns = slambench::metrics::now_ns();

    bool kept = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = inflight_.find(ctx.traceId);
        if (it == inflight_.end())
            return; // evicted while in flight
        RetainedTrace trace = std::move(it->second);
        inflight_.erase(it);
        inflightOrder_.erase(
            std::remove(inflightOrder_.begin(),
                        inflightOrder_.end(), ctx.traceId),
            inflightOrder_.end());

        trace.endNs = end_ns;
        trace.durationSeconds = finish.durationSeconds;
        trace.retention.sloBreach = finish.sloBreach;
        trace.retention.trackingLost = finish.trackingLost;
        trace.retention.topBucket = finish.topBucket;
        kept = trace.retention.flagged();
        if (!kept && options_.sampleRate > 0.0 &&
            sampleFraction(trace.traceId) < options_.sampleRate) {
            trace.retention.sampled = true;
            kept = true;
        }
        if (kept) {
            // Synthesized root: every recorded span is a (transitive)
            // child; appended last so completion order holds.
            RequestSpan root;
            root.spanId = trace.rootSpanId;
            root.parentSpanId = 0;
            root.name = "frame";
            root.cat = Category::Phase;
            root.startNs = trace.startNs;
            root.endNs = end_ns;
            trace.spans.push_back(root);

            if (!finish.exemplarMetric.empty()) {
                TraceExemplar exemplar;
                exemplar.traceId = trace.traceId;
                exemplar.value = finish.durationSeconds;
                exemplar.ns = end_ns;
                exemplars_[finish.exemplarMetric] = exemplar;
            }
            ++tracesRetained_;
            retained_.push_back(std::move(trace));
            while (retained_.size() > options_.maxRetained)
                retained_.pop_front();
        }
    }
    (kept ? retained_counter : dropped_counter).add();
}

uint64_t
RequestTracer::tracesStarted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tracesStarted_;
}

uint64_t
RequestTracer::tracesRetained() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tracesRetained_;
}

std::vector<RetainedTrace>
RequestTracer::retainedSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {retained_.rbegin(), retained_.rend()};
}

bool
RequestTracer::findTrace(uint64_t trace_id,
                         RetainedTrace *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const RetainedTrace &trace : retained_) {
        if (trace.traceId == trace_id) {
            *out = trace;
            return true;
        }
    }
    return false;
}

bool
RequestTracer::exemplarFor(const std::string &metric,
                           TraceExemplar *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = exemplars_.find(metric);
    if (it == exemplars_.end())
        return false;
    *out = it->second;
    return true;
}

RequestTraceSession::RequestTraceSession(
    bool armed, const RequestTraceOptions &options)
{
    if (!armed)
        return;
    RequestTracer::instance().configure(options);
    armed_ = true;
    logInfo() << "trace: request tracing armed (sample rate "
              << options.sampleRate << ", store "
              << options.maxRetained << " traces)";
}

RequestTraceSession::~RequestTraceSession()
{
    if (armed_)
        RequestTracer::instance().disarm();
}

RequestTraceSession::RequestTraceSession(
    RequestTraceSession &&other) noexcept
    : armed_(other.armed_)
{
    other.armed_ = false;
}

RequestTraceSession &
RequestTraceSession::operator=(RequestTraceSession &&other) noexcept
{
    if (this != &other) {
        if (armed_)
            RequestTracer::instance().disarm();
        armed_ = other.armed_;
        other.armed_ = false;
    }
    return *this;
}

Session::Session(std::string json_path, std::string csv_path)
    : jsonPath_(std::move(json_path)), csvPath_(std::move(csv_path))
{
    if (jsonPath_.empty() && csvPath_.empty())
        return;
    Tracer &tracer = Tracer::instance();
    tracer.clear();
    tracer.setEnabled(true);
    armed_ = true;
}

Session::Session(Session &&other) noexcept
    : jsonPath_(std::move(other.jsonPath_)),
      csvPath_(std::move(other.csvPath_)), armed_(other.armed_)
{
    other.armed_ = false;
}

Session &
Session::operator=(Session &&other) noexcept
{
    if (this != &other) {
        finish();
        jsonPath_ = std::move(other.jsonPath_);
        csvPath_ = std::move(other.csvPath_);
        armed_ = other.armed_;
        other.armed_ = false;
    }
    return *this;
}

Session::~Session() { finish(); }

void
Session::finish()
{
    if (!armed_)
        return;
    armed_ = false;
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(false);
    if (!jsonPath_.empty()) {
        if (tracer.writeChromeJson(jsonPath_))
            logInfo() << "trace: wrote " << jsonPath_;
        else
            logError() << "trace: cannot write " << jsonPath_;
    }
    if (!csvPath_.empty()) {
        if (tracer.writeFrameCsv(csvPath_))
            logInfo() << "trace: wrote " << csvPath_;
        else
            logError() << "trace: cannot write " << csvPath_;
    }
}

} // namespace slambench::support::trace
