#include "support/trace.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>

#include "support/logging.hpp"

namespace slambench::support::trace {

namespace {

/**
 * Per-thread stack of open span names backing currentSpanName(),
 * which the thread pool uses for worker-chunk attribution.
 */
thread_local std::vector<const char *> t_span_stack;

/** Append @p s to @p out with JSON string escaping. */
void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        const char c = *s;
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::Kernel: return "kernel";
      case Category::Phase: return "phase";
      case Category::Worker: return "worker";
      case Category::Counter: return "counter";
      case Category::Marker: return "marker";
    }
    return "unknown";
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &buffer : buffers_)
        buffer->events.clear();
    frame_.store(0, std::memory_order_relaxed);
    epoch_ = std::chrono::steady_clock::now();
}

void
Tracer::setFrame(uint64_t frame)
{
    frame_.store(frame, std::memory_order_relaxed);
    record("frame", Category::Marker, 'i',
           static_cast<double>(frame));
}

void
Tracer::beginSpan(const char *name, Category cat)
{
    record(name, cat, 'B', 0.0);
}

void
Tracer::endSpan(const char *name, Category cat)
{
    record(name, cat, 'E', 0.0);
}

void
Tracer::counter(const char *name, double value)
{
    record(name, Category::Counter, 'C', value);
}

Tracer::ThreadBuffer &
Tracer::localBuffer()
{
    // The registry owns the buffer so recorded events outlive the
    // recording thread (worker pools are destroyed before export).
    static thread_local ThreadBuffer *buffer = nullptr;
    if (!buffer) {
        auto owned = std::make_unique<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(mutex_);
        owned->tid = static_cast<uint32_t>(buffers_.size());
        buffer = owned.get();
        buffers_.push_back(std::move(owned));
    }
    return *buffer;
}

void
Tracer::record(const char *name, Category cat, char phase,
               double value)
{
    const auto now = std::chrono::steady_clock::now();
    Event event;
    event.name = name;
    event.tsNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             epoch_)
            .count());
    event.frame = frame_.load(std::memory_order_relaxed);
    event.value = value;
    event.cat = cat;
    event.phase = phase;
    localBuffer().events.push_back(event);
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    for (const auto &buffer : buffers_)
        count += buffer->events.size();
    return count;
}

size_t
Tracer::threadCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    for (const auto &buffer : buffers_)
        count += !buffer->events.empty();
    return count;
}

std::vector<std::vector<Event>>
Tracer::eventsByThread() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::vector<Event>> out;
    out.reserve(buffers_.size());
    for (const auto &buffer : buffers_)
        out.push_back(buffer->events);
    return out;
}

std::vector<FrameKernelTotal>
Tracer::frameKernelTotals() const
{
    // Spans are RAII, so begins and ends nest per thread: pair them
    // with a per-thread stack and attribute the duration to the
    // frame the span *began* in.
    std::map<std::pair<uint64_t, std::string>,
             std::pair<size_t, double>>
        totals;
    for (const auto &events : eventsByThread()) {
        std::vector<const Event *> stack;
        for (const Event &event : events) {
            if (event.phase == 'B') {
                stack.push_back(&event);
            } else if (event.phase == 'E' && !stack.empty()) {
                const Event *begin = stack.back();
                stack.pop_back();
                if (begin->cat != Category::Kernel)
                    continue;
                auto &slot =
                    totals[{begin->frame, begin->name}];
                slot.first += 1;
                slot.second +=
                    static_cast<double>(event.tsNs - begin->tsNs) *
                    1e-9;
            }
        }
    }
    std::vector<FrameKernelTotal> out;
    out.reserve(totals.size());
    for (const auto &[key, value] : totals)
        out.push_back({key.first, key.second, value.first,
                       value.second});
    return out;
}

std::vector<KernelTotal>
Tracer::kernelTotals() const
{
    std::map<std::string, std::pair<size_t, double>> totals;
    for (const FrameKernelTotal &t : frameKernelTotals()) {
        auto &slot = totals[t.name];
        slot.first += t.spans;
        slot.second += t.seconds;
    }
    std::vector<KernelTotal> out;
    out.reserve(totals.size());
    for (const auto &[name, value] : totals)
        out.push_back({name, value.first, value.second});
    return out;
}

void
Tracer::writeChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char buf[64];
    const auto by_thread = eventsByThread();
    for (size_t tid = 0; tid < by_thread.size(); ++tid) {
        for (const Event &event : by_thread[tid]) {
            if (!first)
                os << ",";
            first = false;
            std::string line = "\n{\"name\":\"";
            appendEscaped(line, event.name);
            line += "\",\"cat\":\"";
            line += categoryName(event.cat);
            line += "\",\"ph\":\"";
            line += event.phase;
            line += "\",\"ts\":";
            std::snprintf(buf, sizeof(buf), "%.3f",
                          static_cast<double>(event.tsNs) * 1e-3);
            line += buf;
            line += ",\"pid\":1,\"tid\":";
            std::snprintf(buf, sizeof(buf), "%zu", tid);
            line += buf;
            if (event.phase == 'i')
                line += ",\"s\":\"g\"";
            if (event.phase == 'C') {
                std::snprintf(buf, sizeof(buf),
                              ",\"args\":{\"value\":%.17g}",
                              event.value);
                line += buf;
            } else {
                std::snprintf(buf, sizeof(buf),
                              ",\"args\":{\"frame\":%llu}",
                              static_cast<unsigned long long>(
                                  event.frame));
                line += buf;
            }
            line += "}";
            os << line;
        }
    }
    os << "\n]}\n";
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeChromeJson(os);
    return static_cast<bool>(os);
}

void
Tracer::writeFrameCsv(std::ostream &os) const
{
    os << "frame,kernel,spans,host_ms\n";
    char buf[64];
    for (const FrameKernelTotal &t : frameKernelTotals()) {
        std::snprintf(buf, sizeof(buf), "%.6f", t.seconds * 1e3);
        os << t.frame << "," << t.name << "," << t.spans << ","
           << buf << "\n";
    }
}

bool
Tracer::writeFrameCsv(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeFrameCsv(os);
    return static_cast<bool>(os);
}

const char *
currentSpanName()
{
    return t_span_stack.empty() ? nullptr : t_span_stack.back();
}

namespace detail {

void
pushCurrentSpan(const char *name)
{
    t_span_stack.push_back(name);
}

void
popCurrentSpan()
{
    if (!t_span_stack.empty())
        t_span_stack.pop_back();
}

} // namespace detail

Session::Session(std::string json_path, std::string csv_path)
    : jsonPath_(std::move(json_path)), csvPath_(std::move(csv_path))
{
    if (jsonPath_.empty() && csvPath_.empty())
        return;
    Tracer &tracer = Tracer::instance();
    tracer.clear();
    tracer.setEnabled(true);
    armed_ = true;
}

Session::Session(Session &&other) noexcept
    : jsonPath_(std::move(other.jsonPath_)),
      csvPath_(std::move(other.csvPath_)), armed_(other.armed_)
{
    other.armed_ = false;
}

Session &
Session::operator=(Session &&other) noexcept
{
    if (this != &other) {
        finish();
        jsonPath_ = std::move(other.jsonPath_);
        csvPath_ = std::move(other.csvPath_);
        armed_ = other.armed_;
        other.armed_ = false;
    }
    return *this;
}

Session::~Session() { finish(); }

void
Session::finish()
{
    if (!armed_)
        return;
    armed_ = false;
    Tracer &tracer = Tracer::instance();
    tracer.setEnabled(false);
    if (!jsonPath_.empty()) {
        if (tracer.writeChromeJson(jsonPath_))
            logInfo() << "trace: wrote " << jsonPath_;
        else
            logError() << "trace: cannot write " << jsonPath_;
    }
    if (!csvPath_.empty()) {
        if (tracer.writeFrameCsv(csvPath_))
            logInfo() << "trace: wrote " << csvPath_;
        else
            logError() << "trace: cannot write " << csvPath_;
    }
}

} // namespace slambench::support::trace
