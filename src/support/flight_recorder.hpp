#ifndef SLAMBENCH_SUPPORT_FLIGHT_RECORDER_HPP
#define SLAMBENCH_SUPPORT_FLIGHT_RECORDER_HPP

/**
 * @file
 * Crash-surviving event telemetry: a fixed-size lock-free ring of
 * recent structured events (frame telemetry, tracking failures, DSE
 * evaluations, SLO breaches) plus an async-signal-safe fatal-signal
 * handler that dumps the ring and a metrics-registry snapshot to a
 * JSON file.
 *
 * The run reports of `support/metrics.hpp` are only written when a
 * run ends cleanly; a hung sweep or a crashed pipeline leaves
 * nothing to inspect. The flight recorder closes that gap: hot paths
 * append events at a cost of one relaxed atomic increment plus a
 * bounded copy (nothing is recorded while disabled — a single
 * relaxed load), and when the process dies on SIGSEGV / SIGABRT /
 * SIGBUS / SIGFPE / SIGILL / SIGTERM / SIGINT the handler writes the
 * last <= FlightRecorder::kCapacity events as
 * `slambench-crash-dump` JSON (schema in docs/OBSERVABILITY.md)
 * using only async-signal-safe primitives (write(2), no allocation,
 * no stdio, no locks), then re-raises the signal.
 */

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace slambench::support::telemetry {

/** What a flight-recorder event describes. */
enum class EventKind : uint32_t {
    Frame = 1,           ///< One processed pipeline frame.
    TrackingFailure = 2, ///< A frame whose pose was rejected.
    DseEvaluation = 3,   ///< One DSE configuration evaluation.
    SloBreach = 4,       ///< An SLO watchdog threshold breach.
    Note = 5,            ///< Free-form annotation.
};

/** @return the stable lower-case name of @p kind ("frame", ...). */
const char *eventKindName(EventKind kind);

/**
 * One fixed-size structured event. The two scalars are
 * kind-specific: Frame carries (wall seconds, live ATE m),
 * DseEvaluation (eval wall seconds, primary objective), SloBreach
 * (observed value, limit).
 */
struct Event
{
    /** Monotonic timestamp (metrics::now_ns clock). */
    uint64_t ns = 0;
    EventKind kind = EventKind::Note;
    /** Frame index / evaluation ordinal, kind-specific. */
    uint64_t frame = 0;
    double a = 0.0; ///< First kind-specific scalar.
    double b = 0.0; ///< Second kind-specific scalar.
    /** NUL-terminated label (truncated to the field size). */
    char detail[48] = {};
};

/**
 * Process-wide fixed-capacity ring of recent events.
 *
 * Writers are lock-free and wait-free: a ticket from one atomic
 * fetch_add picks the slot, a per-slot sequence word published with
 * release ordering makes torn slots detectable by readers (seqlock
 * per slot, writer-preferring). Readers — snapshot() and the crash
 * handler — skip slots whose sequence does not match the expected
 * ticket, so a reader racing an active writer drops that slot
 * instead of observing a half-written event.
 *
 * Disabled by default; record() is a single relaxed load until
 * setEnabled(true) (done by TelemetryEndpoint when any live
 * telemetry flag is armed).
 */
class FlightRecorder
{
  public:
    /** Default ring capacity (slots; overridden by setCapacity /
     *  `--recorder-slots`). */
    static constexpr size_t kCapacity = 1024;

    /** 64-bit words needed to hold one serialized Event. */
    static constexpr size_t kEventWords = (sizeof(Event) + 7) / 8;

    /** @return the process-wide recorder. */
    static FlightRecorder &instance();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Arm / disarm recording (relaxed; thread-safe). */
    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** @return whether record() currently stores events. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Append one event (no-op while disabled). Thread-safe and
     * lock-free; @p detail is truncated to Event::detail.
     */
    void record(EventKind kind, uint64_t frame, double a, double b,
                const char *detail);

    /**
     * Resize the ring to @p slots (rounded up to a power of two,
     * clamped to [64, 1<<20]) and drop all retained events. NOT safe
     * against concurrent record()/snapshot(): call it at startup
     * before recording is enabled (TelemetryEndpoint does, from
     * `--recorder-slots`). The default 1024 slots wrap within
     * seconds under a many-tenant soak; size the ring to the event
     * rate times the post-incident window you want to inspect.
     */
    void setCapacity(size_t slots);

    /** @return the current ring capacity, slots. */
    size_t
    capacity() const
    {
        return capacity_;
    }

    /** @return events recorded since construction (not capped). */
    uint64_t
    totalRecorded() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    /**
     * Copy the retained events, oldest first. Slots being written
     * concurrently (or already overwritten) are skipped, so the
     * result holds at most capacity() fully-consistent events.
     */
    std::vector<Event> snapshot() const;

    /** Drop all retained events and zero totalRecorded() (tests). */
    void reset();

  private:
    FlightRecorder();

    friend void writeCrashDump(int fd, int signal_number);

    struct Slot
    {
        /** Publication word: 0 = empty/in-progress, else the ticket
         *  of the event stored in `words`. */
        std::atomic<uint64_t> seq{0};
        /** The Event, serialized to relaxed-atomic words so reader /
         *  writer races stay well-defined (the seqlock check decides
         *  whether the reassembled copy is consistent). */
        std::array<std::atomic<uint64_t>, kEventWords> words{};
    };

    std::atomic<bool> enabled_{false};
    /** Tickets issued; ticket t lives in slots_[t & mask_]. */
    std::atomic<uint64_t> head_{0};
    /** Ring storage; capacity_ is a power of two, mask_ its - 1.
     *  Reallocated only by setCapacity() (startup, pre-enable), so
     *  the async-signal-safe crash dump can read it lock-free. */
    size_t capacity_ = 0;
    uint64_t mask_ = 0;
    std::unique_ptr<Slot[]> slots_;
};

/**
 * Install the fatal-signal crash handler: on SIGSEGV, SIGABRT,
 * SIGBUS, SIGFPE, SIGILL, SIGTERM, or SIGINT, dump the flight
 * recorder ring plus a registry snapshot to @p path as
 * `slambench-crash-dump` JSON, restore the default disposition, and
 * re-raise so the process still dies with the original signal.
 * Also enables the recorder. Idempotent; the last path wins.
 *
 * @param path Output file (truncated at crash time, not before).
 * @param generator Producing binary's name, stamped into the dump.
 */
void installCrashDump(const std::string &path,
                      const std::string &generator);

/** @return the installed crash-dump path ("" when not installed). */
const char *crashDumpPath();

/**
 * Write the crash-dump JSON to @p fd now. This is the handler's
 * body, exposed for tests; it is async-signal-safe (write(2) only,
 * no allocation, no locks, no stdio).
 *
 * @param fd Open file descriptor to write to.
 * @param signal_number Value stored in the dump's "signal" field
 *        (0 = not a signal, e.g. an on-demand dump).
 */
void writeCrashDump(int fd, int signal_number);

} // namespace slambench::support::telemetry

#endif // SLAMBENCH_SUPPORT_FLIGHT_RECORDER_HPP
