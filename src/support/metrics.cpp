#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <ostream>

#include <sys/resource.h>

#include "metrics/timing.hpp"
#include "support/csv.hpp"
#include "support/logging.hpp"
#include "support/pmu.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

// Build provenance stamped into every run report; the root
// CMakeLists defines these from `git describe` and the toolchain.
#ifndef SLAMBENCH_GIT_DESCRIBE
#define SLAMBENCH_GIT_DESCRIBE "unknown"
#endif
#ifndef SLAMBENCH_BUILD_TYPE
#define SLAMBENCH_BUILD_TYPE "unknown"
#endif
#ifndef SLAMBENCH_COMPILER
#define SLAMBENCH_COMPILER "unknown"
#endif
#ifndef SLAMBENCH_CXX_FLAGS
#define SLAMBENCH_CXX_FLAGS ""
#endif

namespace slambench::support::metrics {

namespace {

/** Newest node of the lock-free crash index (see crashIndexHead). */
std::atomic<const CrashIndexNode *> g_crash_index_head{nullptr};

/**
 * Publish one crash-index node for a just-created metric. Called
 * under the Registry mutex but uses CAS anyway so crashIndexHead()
 * readers (signal handlers) need no lock; the node and its name copy
 * intentionally leak — metrics live for the process lifetime.
 */
void
pushCrashIndexNode(const std::string &name,
                   CrashIndexNode::Kind kind, const void *metric)
{
    auto *name_copy = new char[name.size() + 1];
    std::memcpy(name_copy, name.c_str(), name.size() + 1);
    auto *node = new CrashIndexNode{name_copy, kind, metric, nullptr};
    const CrashIndexNode *head =
        g_crash_index_head.load(std::memory_order_relaxed);
    do {
        node->next = head;
    } while (!g_crash_index_head.compare_exchange_weak(
        head, node, std::memory_order_release,
        std::memory_order_relaxed));
}

/** CAS-add for pre-C++20-hardware-support atomic doubles. */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double expected = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(expected, expected + delta,
                                         std::memory_order_relaxed))
        ;
}

void
atomicMin(std::atomic<double> &target, double value)
{
    double expected = target.load(std::memory_order_relaxed);
    while (value < expected &&
           !target.compare_exchange_weak(expected, value,
                                         std::memory_order_relaxed))
        ;
}

void
atomicMax(std::atomic<double> &target, double value)
{
    double expected = target.load(std::memory_order_relaxed);
    while (value > expected &&
           !target.compare_exchange_weak(expected, value,
                                         std::memory_order_relaxed))
        ;
}

/** Append @p value to @p out as JSON-escaped string content. */
void
appendEscaped(std::string &out, const std::string &value)
{
    for (const char c : value) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

std::string
jsonString(const std::string &value)
{
    std::string out = "\"";
    appendEscaped(out, value);
    out += "\"";
    return out;
}

/** Format a finite JSON number; non-finite values become 0. */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        value = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return buf;
}

} // namespace

void
Gauge::setMax(double v)
{
    atomicMax(value_, v);
}

void
LatencyHistogram::record(double seconds)
{
    buckets_[bucketIndex(seconds)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, seconds);
    atomicMin(min_, seconds);
    atomicMax(max_, seconds);
}

double
LatencyHistogram::mean() const
{
    const uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
}

double
LatencyHistogram::min() const
{
    return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double
LatencyHistogram::max() const
{
    return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

size_t
LatencyHistogram::bucketIndex(double seconds) const
{
    const double lo = std::pow(10.0, kLogLo);
    if (!(seconds >= lo)) // also catches NaN and negatives
        return 0;
    const double position =
        (std::log10(seconds) - kLogLo) *
        static_cast<double>(kBucketsPerDecade);
    const long bounded =
        static_cast<long>(kNumBuckets) - 2; // bounded bucket count
    const long raw = static_cast<long>(std::floor(position));
    if (raw >= bounded)
        return kNumBuckets - 1; // overflow
    return static_cast<size_t>(std::max(raw, 0L)) + 1;
}

size_t
LatencyHistogram::highestPopulatedBucket() const
{
    for (size_t i = kNumBuckets; i-- > 0;) {
        if (buckets_[i].load(std::memory_order_relaxed) != 0)
            return i;
    }
    return kNumBuckets;
}

double
LatencyHistogram::bucketLo(size_t i) const
{
    if (i == 0)
        return 0.0;
    return std::pow(10.0,
                    kLogLo + static_cast<double>(i - 1) /
                                 static_cast<double>(
                                     kBucketsPerDecade));
}

double
LatencyHistogram::bucketHi(size_t i) const
{
    if (i + 1 == kNumBuckets)
        return std::numeric_limits<double>::infinity();
    return std::pow(10.0,
                    kLogLo + static_cast<double>(i) /
                                 static_cast<double>(
                                     kBucketsPerDecade));
}

double
LatencyHistogram::quantile(double q) const
{
    const uint64_t n = count();
    if (n == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(n);
    double cumulative = 0.0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        const double in_bucket =
            static_cast<double>(bucketCount(i));
        if (in_bucket == 0.0)
            continue;
        if (cumulative + in_bucket >= target) {
            const double frac =
                std::clamp((target - cumulative) / in_bucket, 0.0,
                           1.0);
            double lo = bucketLo(i);
            double hi = bucketHi(i);
            // The exact envelope tightens the unbounded/edge buckets.
            lo = std::max(lo, min());
            hi = std::min(hi, max());
            if (!(hi > lo))
                return std::clamp(lo, min(), max());
            return lo + frac * (hi - lo);
        }
        cumulative += in_bucket;
    }
    return max();
}

void
LatencyHistogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

const CrashIndexNode *
crashIndexHead()
{
    return g_crash_index_head.load(std::memory_order_acquire);
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
        pushCrashIndexNode(name, CrashIndexNode::Kind::Counter,
                           slot.get());
    }
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
        pushCrashIndexNode(name, CrashIndexNode::Kind::Gauge,
                           slot.get());
    }
    return *slot;
}

LatencyHistogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<LatencyHistogram>();
        pushCrashIndexNode(name, CrashIndexNode::Kind::Histogram,
                           slot.get());
    }
    return *slot;
}

std::vector<std::pair<std::string, uint64_t>>
Registry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        out.emplace_back(name, counter->value());
    return out;
}

std::vector<std::pair<std::string, double>>
Registry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, gauge] : gauges_)
        out.emplace_back(name, gauge->value());
    return out;
}

std::vector<std::pair<std::string, const LatencyHistogram *>>
Registry::histograms() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, const LatencyHistogram *>> out;
    out.reserve(histograms_.size());
    for (const auto &[name, histogram] : histograms_)
        out.emplace_back(name, histogram.get());
    return out;
}

void
Registry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

const char *
gitDescribe()
{
    return SLAMBENCH_GIT_DESCRIBE;
}

const char *
buildType()
{
    return SLAMBENCH_BUILD_TYPE;
}

double
peakRssBytes()
{
#ifdef __linux__
    // VmHWM is the resident-set high-water mark in kB.
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            const double kb = std::atof(line.c_str() + 6);
            if (kb > 0.0)
                return kb * 1024.0;
        }
    }
#endif
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0)
        // ru_maxrss is kB on Linux (bytes on macOS, close enough
        // for a fallback that Linux never takes).
        return static_cast<double>(usage.ru_maxrss) * 1024.0;
    return 0.0;
}

double
processCpuSeconds()
{
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    auto seconds = [](const struct timeval &tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

namespace {

/** Guards g_current_session; function-local for init-order safety. */
std::mutex &
currentSessionMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** The process's current active session (nullptr when none). */
RunSession *g_current_session = nullptr;

/** Header of the per-frame CSV (streaming and writeFramesCsv). */
std::vector<std::string>
frameCsvColumns()
{
    return {"label",        "frame",      "wall_ms",
            "preprocess_ms", "track_ms",   "integrate_ms",
            "raycast_ms",    "ate_m",      "tracked",
            "integrated",    "sim_joules", "rss_peak_bytes"};
}

/** Append one frame row to @p csv. */
void
writeFrameCsvRow(CsvWriter &csv, const FrameTelemetry &t)
{
    csv.beginRow()
        .cell(t.label)
        .cell(static_cast<uint64_t>(t.frame))
        .cell(t.wallSeconds * 1e3)
        .cell(t.preprocessSeconds * 1e3)
        .cell(t.trackSeconds * 1e3)
        .cell(t.integrateSeconds * 1e3)
        .cell(t.raycastSeconds * 1e3)
        .cell(t.ateMeters)
        .cell(t.tracked ? "1" : "0")
        .cell(t.integrated ? "1" : "0")
        .cell(t.simJoules)
        .cell(t.rssPeakBytes);
    csv.endRow();
}

} // namespace

RunSession::RunSession() = default;

RunSession::RunSession(std::string json_path, std::string csv_path,
                       std::string generator)
    : jsonPath_(std::move(json_path)), csvPath_(std::move(csv_path)),
      generator_(std::move(generator))
{
    if (jsonPath_.empty() && csvPath_.empty())
        return;
    active_ = true;
    startNs_ = slambench::metrics::now_ns();
    startCpuSeconds_ = processCpuSeconds();
    if (!csvPath_.empty()) {
        // Stream rows as frames arrive (flushed per window in
        // addFrame) so a crash loses at most one window.
        csvStream_ = std::make_unique<std::ofstream>(csvPath_);
        if (*csvStream_) {
            csvWriter_ = std::make_unique<CsvWriter>(
                *csvStream_, frameCsvColumns());
        } else {
            logError() << "metrics: cannot write " << csvPath_;
            csvStream_.reset();
        }
    }
    registerCurrent();
}

RunSession::RunSession(RunSession &&other) noexcept
{
    std::lock_guard<std::mutex> lock(currentSessionMutex());
    jsonPath_ = std::move(other.jsonPath_);
    csvPath_ = std::move(other.csvPath_);
    generator_ = std::move(other.generator_);
    active_ = other.active_;
    startNs_ = other.startNs_;
    startCpuSeconds_ = other.startCpuSeconds_;
    params_ = std::move(other.params_);
    extraSummary_ = std::move(other.extraSummary_);
    frames_ = std::move(other.frames_);
    mutex_ = std::move(other.mutex_);
    csvStream_ = std::move(other.csvStream_);
    csvWriter_ = std::move(other.csvWriter_);
    csvRowsFlushed_ = other.csvRowsFlushed_;
    other.active_ = false;
    other.mutex_ = std::make_unique<std::mutex>();
    if (g_current_session == &other)
        g_current_session = this;
}

RunSession &
RunSession::operator=(RunSession &&other) noexcept
{
    if (this != &other) {
        finish();
        std::lock_guard<std::mutex> lock(currentSessionMutex());
        jsonPath_ = std::move(other.jsonPath_);
        csvPath_ = std::move(other.csvPath_);
        generator_ = std::move(other.generator_);
        active_ = other.active_;
        startNs_ = other.startNs_;
        startCpuSeconds_ = other.startCpuSeconds_;
        params_ = std::move(other.params_);
        extraSummary_ = std::move(other.extraSummary_);
        frames_ = std::move(other.frames_);
        mutex_ = std::move(other.mutex_);
        csvStream_ = std::move(other.csvStream_);
        csvWriter_ = std::move(other.csvWriter_);
        csvRowsFlushed_ = other.csvRowsFlushed_;
        other.active_ = false;
        other.mutex_ = std::make_unique<std::mutex>();
        if (g_current_session == &other)
            g_current_session = this;
    }
    return *this;
}

RunSession::~RunSession() { finish(); }

void
RunSession::registerCurrent()
{
    std::lock_guard<std::mutex> lock(currentSessionMutex());
    g_current_session = this;
}

void
RunSession::unregisterCurrent()
{
    std::lock_guard<std::mutex> lock(currentSessionMutex());
    if (g_current_session == this)
        g_current_session = nullptr;
}

bool
RunSession::writeCurrentJson(std::ostream &os)
{
    // Holding the global lock across writeJson keeps the session
    // alive for the duration (finish() and moves take it too); the
    // instance lock inside writeJson orders us against addFrame.
    std::lock_guard<std::mutex> lock(currentSessionMutex());
    if (!g_current_session)
        return false;
    g_current_session->writeJson(os);
    return true;
}

void
RunSession::setParam(const std::string &key, const std::string &value)
{
    if (!active_)
        return;
    std::lock_guard<std::mutex> lock(*mutex_);
    for (auto &[existing, existing_value] : params_) {
        if (existing == key) {
            existing_value = value;
            return;
        }
    }
    params_.emplace_back(key, value);
}

void
RunSession::setSummary(const std::string &key, double value)
{
    if (!active_)
        return;
    std::lock_guard<std::mutex> lock(*mutex_);
    for (auto &[existing, existing_value] : extraSummary_) {
        if (existing == key) {
            existing_value = value;
            return;
        }
    }
    extraSummary_.emplace_back(key, value);
}

void
RunSession::addFrame(const FrameTelemetry &telemetry)
{
    if (!active_)
        return;
    std::lock_guard<std::mutex> lock(*mutex_);
    frames_.push_back(telemetry);
    if (csvWriter_) {
        writeFrameCsvRow(*csvWriter_, telemetry);
        flushCsvLocked(false);
    }
}

void
RunSession::flushCsvLocked(bool final_flush)
{
    if (!csvWriter_)
        return;
    const size_t rows = csvWriter_->rowCount();
    const size_t pending = rows - csvRowsFlushed_;
    if (pending == 0 ||
        (!final_flush && pending < kCsvFlushInterval))
        return;
    csvStream_->flush();
    Registry::instance()
        .counter("metrics.frames.flushed")
        .add(pending);
    csvRowsFlushed_ = rows;
}

void
RunSession::writeJson(std::ostream &os) const
{
    // Fold the PMU profiler's aggregated per-span metrics into the
    // registry gauges first so the gauges block reflects them (no-op
    // when --pmu never armed profiling this run).
    pmu::publishGauges();
    std::lock_guard<std::mutex> lock(*mutex_);
    // Exact per-frame distributions for the summary block; the
    // quantiles reuse support::percentile (linear interpolation).
    std::vector<double> wall;
    std::vector<double> ate;
    wall.reserve(frames_.size());
    ate.reserve(frames_.size());
    size_t tracked = 0;
    size_t integrated = 0;
    double sim_joules = 0.0;
    double frame_rss_peak = 0.0;
    for (const FrameTelemetry &t : frames_) {
        wall.push_back(t.wallSeconds);
        ate.push_back(t.ateMeters);
        tracked += t.tracked ? 1 : 0;
        integrated += t.integrated ? 1 : 0;
        sim_joules += t.simJoules;
        frame_rss_peak = std::max(frame_rss_peak, t.rssPeakBytes);
    }
    double wall_sum = 0.0;
    double wall_max = 0.0;
    double ate_sum = 0.0;
    double ate_max = 0.0;
    for (double w : wall) {
        wall_sum += w;
        wall_max = std::max(wall_max, w);
    }
    for (double a : ate) {
        ate_sum += a;
        ate_max = std::max(ate_max, a);
    }
    const double n = static_cast<double>(frames_.size());
    const double rss_peak =
        std::max(frame_rss_peak, peakRssBytes());

    os << "{\n";
    os << "  \"schema\": \"slambench-run-report\",\n";
    os << "  \"schema_version\": " << kSchemaVersion << ",\n";
    os << "  \"generator\": " << jsonString(generator_) << ",\n";
    os << "  \"created_unix\": "
       << static_cast<long long>(std::time(nullptr)) << ",\n";
    os << "  \"git_describe\": "
       << jsonString(SLAMBENCH_GIT_DESCRIBE) << ",\n";
    os << "  \"build\": {\n";
    os << "    \"build_type\": " << jsonString(SLAMBENCH_BUILD_TYPE)
       << ",\n";
    os << "    \"compiler\": " << jsonString(SLAMBENCH_COMPILER)
       << ",\n";
    os << "    \"cxx_flags\": " << jsonString(SLAMBENCH_CXX_FLAGS)
       << "\n  },\n";

    os << "  \"config\": {";
    for (size_t i = 0; i < params_.size(); ++i) {
        os << (i ? ",\n    " : "\n    ")
           << jsonString(params_[i].first) << ": "
           << jsonString(params_[i].second);
    }
    os << (params_.empty() ? "},\n" : "\n  },\n");

    const double wall_seconds =
        active_ ? static_cast<double>(slambench::metrics::now_ns() -
                                      startNs_) *
                      1e-9
                : 0.0;
    os << "  \"run\": {\n";
    os << "    \"wall_seconds\": " << jsonNumber(wall_seconds)
       << ",\n";
    os << "    \"cpu_seconds\": "
       << jsonNumber(processCpuSeconds() - startCpuSeconds_) << ",\n";
    os << "    \"frames\": " << frames_.size() << ",\n";
    os << "    \"tracked_frames\": " << tracked << ",\n";
    os << "    \"integrated_frames\": " << integrated << ",\n";
    os << "    \"peak_rss_bytes\": " << jsonNumber(rss_peak)
       << "\n  },\n";

    os << "  \"summary\": {\n";
    os << "    \"frame_wall_seconds_mean\": "
       << jsonNumber(n > 0.0 ? wall_sum / n : 0.0) << ",\n";
    os << "    \"frame_wall_seconds_p50\": "
       << jsonNumber(support::percentile(wall, 50.0)) << ",\n";
    os << "    \"frame_wall_seconds_p90\": "
       << jsonNumber(support::percentile(wall, 90.0)) << ",\n";
    os << "    \"frame_wall_seconds_p99\": "
       << jsonNumber(support::percentile(wall, 99.0)) << ",\n";
    os << "    \"frame_wall_seconds_max\": " << jsonNumber(wall_max)
       << ",\n";
    os << "    \"ate_mean_m\": "
       << jsonNumber(n > 0.0 ? ate_sum / n : 0.0) << ",\n";
    os << "    \"ate_max_m\": " << jsonNumber(ate_max) << ",\n";
    os << "    \"tracked_fraction\": "
       << jsonNumber(n > 0.0 ? static_cast<double>(tracked) / n
                             : 0.0)
       << ",\n";
    os << "    \"sim_joules_total\": " << jsonNumber(sim_joules)
       << ",\n";
    os << "    \"peak_rss_bytes\": " << jsonNumber(rss_peak);
    for (const auto &[key, value] : extraSummary_)
        os << ",\n    " << jsonString(key) << ": "
           << jsonNumber(value);
    os << "\n  },\n";

    const Registry &registry = Registry::instance();
    os << "  \"counters\": {";
    const auto counters = registry.counters();
    for (size_t i = 0; i < counters.size(); ++i) {
        os << (i ? ",\n    " : "\n    ")
           << jsonString(counters[i].first) << ": "
           << counters[i].second;
    }
    os << (counters.empty() ? "},\n" : "\n  },\n");

    os << "  \"gauges\": {";
    const auto gauges = registry.gauges();
    for (size_t i = 0; i < gauges.size(); ++i) {
        os << (i ? ",\n    " : "\n    ")
           << jsonString(gauges[i].first) << ": "
           << jsonNumber(gauges[i].second);
    }
    os << (gauges.empty() ? "},\n" : "\n  },\n");

    // Optional hardware-counter block: present whenever a pmu::Session
    // armed profiling this run (even on the null backend, where every
    // kernel entry simply has no valid counters) — absent otherwise,
    // so pre-PMU reports stay byte-compatible. Schema in
    // docs/OBSERVABILITY.md, validated by check_metrics_schema.py.
    if (pmu::profilingActive()) {
        const pmu::CounterBackend *backend =
            pmu::Profiler::instance().backend();
        os << "  \"pmu\": {\n";
        os << "    \"backend\": "
           << jsonString(backend ? backend->name() : "null") << ",\n";
        os << "    \"counters\": [";
        const uint32_t mask = backend ? backend->availableMask() : 0;
        bool first_counter = true;
        for (size_t i = 0; i < pmu::kNumCounters; ++i) {
            if (!(mask & (1u << i)))
                continue;
            os << (first_counter ? "" : ", ")
               << jsonString(pmu::counterName(
                      static_cast<pmu::CounterId>(i)));
            first_counter = false;
        }
        os << "],\n";
        os << "    \"kernels\": {";
        bool first_kernel = true;
        for (const pmu::SpanStats &stats :
             pmu::Profiler::instance().spanStats()) {
            os << (first_kernel ? "\n      " : ",\n      ")
               << jsonString(stats.name) << ": {\n";
            first_kernel = false;
            os << "        \"spans\": " << stats.spans;
            for (size_t i = 0; i < pmu::kNumCounters; ++i) {
                const auto id = static_cast<pmu::CounterId>(i);
                if (!stats.totals.valid(id))
                    continue;
                os << ",\n        "
                   << jsonString(pmu::counterName(id)) << ": "
                   << jsonNumber(stats.totals.get(id));
            }
            const pmu::DerivedMetrics derived =
                pmu::deriveMetrics(stats.totals, stats.bytes);
            if (derived.hasIpc)
                os << ",\n        \"ipc\": "
                   << jsonNumber(derived.ipc);
            if (derived.hasLlcMissRate)
                os << ",\n        \"llc_miss_rate\": "
                   << jsonNumber(derived.llcMissRate);
            if (derived.hasBranchMissRate)
                os << ",\n        \"branch_miss_rate\": "
                   << jsonNumber(derived.branchMissRate);
            if (derived.hasTaskClock)
                os << ",\n        \"task_clock_seconds\": "
                   << jsonNumber(derived.taskClockSeconds);
            if (stats.bytes > 0.0)
                os << ",\n        \"bytes\": "
                   << jsonNumber(stats.bytes);
            if (derived.hasBytesPerSecond)
                os << ",\n        \"bytes_per_second\": "
                   << jsonNumber(derived.bytesPerSecond);
            os << "\n      }";
        }
        os << (first_kernel ? "}\n" : "\n    }\n");
        os << "  },\n";
    }

    os << "  \"histograms\": {";
    const auto histograms = registry.histograms();
    bool first_histogram = true;
    for (const auto &[name, histogram] : histograms) {
        os << (first_histogram ? "\n    " : ",\n    ")
           << jsonString(name) << ": {\n";
        first_histogram = false;
        os << "      \"count\": " << histogram->count() << ",\n";
        os << "      \"sum\": " << jsonNumber(histogram->sum())
           << ",\n";
        os << "      \"mean\": " << jsonNumber(histogram->mean())
           << ",\n";
        os << "      \"min\": " << jsonNumber(histogram->min())
           << ",\n";
        os << "      \"max\": " << jsonNumber(histogram->max())
           << ",\n";
        os << "      \"p50\": "
           << jsonNumber(histogram->quantile(0.50)) << ",\n";
        os << "      \"p90\": "
           << jsonNumber(histogram->quantile(0.90)) << ",\n";
        os << "      \"p99\": "
           << jsonNumber(histogram->quantile(0.99)) << ",\n";
        os << "      \"buckets\": [";
        bool first_bucket = true;
        for (size_t i = 0; i < histogram->numBuckets(); ++i) {
            const uint64_t bucket_count = histogram->bucketCount(i);
            if (bucket_count == 0)
                continue;
            os << (first_bucket ? "\n        [" : ",\n        [");
            first_bucket = false;
            os << jsonNumber(histogram->bucketLo(i)) << ", ";
            const double hi = histogram->bucketHi(i);
            if (std::isfinite(hi))
                os << jsonNumber(hi);
            else
                os << "null";
            os << ", " << bucket_count << "]";
        }
        os << (first_bucket ? "]\n    }" : "\n      ]\n    }");
    }
    os << (histograms.empty() ? "}\n" : "\n  }\n");
    os << "}\n";
}

void
RunSession::writeFramesCsv(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(*mutex_);
    CsvWriter csv(os, frameCsvColumns());
    for (const FrameTelemetry &t : frames_)
        writeFrameCsvRow(csv, t);
}

void
RunSession::finish()
{
    if (!active_)
        return;
    unregisterCurrent();
    if (!jsonPath_.empty()) {
        std::ofstream os(jsonPath_);
        if (os) {
            writeJson(os);
            logInfo() << "metrics: wrote " << jsonPath_;
        } else {
            logError() << "metrics: cannot write " << jsonPath_;
        }
    }
    if (csvWriter_) {
        {
            std::lock_guard<std::mutex> lock(*mutex_);
            flushCsvLocked(true);
            csvWriter_.reset();
            csvStream_.reset();
        }
        logInfo() << "metrics: wrote " << csvPath_;
    }
    double wall_sum = 0.0;
    double ate_max = 0.0;
    for (const FrameTelemetry &t : frames_) {
        wall_sum += t.wallSeconds;
        ate_max = std::max(ate_max, t.ateMeters);
    }
    logInfo() << support::format(
        "metrics: %s: %zu frames, mean %.2f ms/frame, max ATE "
        "%.4f m, peak RSS %.1f MB",
        generator_.c_str(), frames_.size(),
        frames_.empty()
            ? 0.0
            : wall_sum * 1e3 / static_cast<double>(frames_.size()),
        ate_max, peakRssBytes() / (1024.0 * 1024.0));
    active_ = false;
}

} // namespace slambench::support::metrics
