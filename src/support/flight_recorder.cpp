#include "support/flight_recorder.hpp"

#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "metrics/timing.hpp"
#include "support/metrics.hpp"

namespace slambench::support::telemetry {

namespace {

// --- Async-signal-safe formatting -------------------------------
//
// The crash handler may run on a corrupted heap, so everything below
// uses only stack buffers and write(2): no allocation, no stdio, no
// locale, no locks.

/** Append @p v as decimal digits; @return characters written. */
size_t
fmtU64(char *out, uint64_t v)
{
    char tmp[24];
    size_t n = 0;
    do {
        tmp[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    for (size_t i = 0; i < n; ++i)
        out[i] = tmp[n - 1 - i];
    return n;
}

/** Append @p v as a signed decimal; @return characters written. */
size_t
fmtI64(char *out, int64_t v)
{
    size_t n = 0;
    uint64_t u;
    if (v < 0) {
        out[n++] = '-';
        u = static_cast<uint64_t>(-(v + 1)) + 1;
    } else {
        u = static_cast<uint64_t>(v);
    }
    return n + fmtU64(out + n, u);
}

/**
 * Append @p v as a JSON number in normalized scientific form with 9
 * significant digits ("1.23456789e-3"). Non-finite values become 0
 * (matching the run-report writer). @return characters written.
 */
size_t
fmtDouble(char *out, double v)
{
    if (!(v > -1e308 && v < 1e308)) { // NaN or +-inf
        out[0] = '0';
        return 1;
    }
    size_t n = 0;
    if (v < 0.0) {
        out[n++] = '-';
        v = -v;
    }
    if (v == 0.0) {
        out[n++] = '0';
        return n;
    }
    int exp = 0;
    while (v >= 10.0) {
        v /= 10.0;
        ++exp;
    }
    while (v < 1.0) {
        v *= 10.0;
        --exp;
    }
    // Round to 9 significant digits; rounding can carry (9.99... ->
    // 10.0), which bumps the exponent.
    auto mantissa = static_cast<uint64_t>(v * 1e8 + 0.5);
    if (mantissa >= 1000000000ull) {
        mantissa /= 10;
        ++exp;
    }
    char digits[24];
    const size_t dn = fmtU64(digits, mantissa);
    out[n++] = digits[0];
    size_t last = dn;
    while (last > 1 && digits[last - 1] == '0')
        --last;
    if (last > 1) {
        out[n++] = '.';
        for (size_t i = 1; i < last; ++i)
            out[n++] = digits[i];
    }
    if (exp != 0) {
        out[n++] = 'e';
        n += fmtI64(out + n, exp);
    }
    return n;
}

/** Buffered write(2) sink for the crash dump. */
class FdWriter
{
  public:
    explicit FdWriter(int fd) : fd_(fd) {}
    ~FdWriter() { flush(); }

    /** Append @p n raw bytes. */
    void
    put(const char *data, size_t n)
    {
        for (size_t i = 0; i < n; ++i) {
            if (len_ == sizeof(buf_))
                flush();
            buf_[len_++] = data[i];
        }
    }

    /** Append a NUL-terminated string verbatim. */
    void str(const char *s) { put(s, std::strlen(s)); }

    /** Append a JSON string literal with minimal escaping. */
    void
    jsonString(const char *s)
    {
        put("\"", 1);
        for (; *s; ++s) {
            const char c = *s;
            if (c == '"' || c == '\\') {
                put("\\", 1);
                put(&c, 1);
            } else if (static_cast<unsigned char>(c) < 0x20) {
                // Control bytes become spaces: a crash dump values
                // parseability over fidelity of exotic labels.
                put(" ", 1);
            } else {
                put(&c, 1);
            }
        }
        put("\"", 1);
    }

    /** Append an unsigned decimal. */
    void
    u64(uint64_t v)
    {
        char tmp[24];
        put(tmp, fmtU64(tmp, v));
    }

    /** Append a signed decimal. */
    void
    i64(int64_t v)
    {
        char tmp[24];
        put(tmp, fmtI64(tmp, v));
    }

    /** Append a JSON number. */
    void
    dbl(double v)
    {
        char tmp[40];
        put(tmp, fmtDouble(tmp, v));
    }

    /** Drain the buffer to the descriptor. */
    void
    flush()
    {
        size_t off = 0;
        while (off < len_) {
            const ssize_t n = ::write(fd_, buf_ + off, len_ - off);
            if (n <= 0)
                break; // nothing more we can do in a handler
            off += static_cast<size_t>(n);
        }
        len_ = 0;
    }

  private:
    int fd_;
    char buf_[4096];
    size_t len_ = 0;
};

// --- Crash-handler state ----------------------------------------

/** Dump path; fixed storage so the handler never allocates. */
char g_crash_path[1024] = {0};
/** Producing binary's name, stamped into the dump. */
char g_crash_generator[128] = {0};
/** First-crash latch: nested/concurrent faults skip the dump. */
std::atomic<bool> g_crash_dumping{false};
/** Signals covered by the handler. */
constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
                                 SIGILL,  SIGTERM, SIGINT};

extern "C" void
slambenchCrashHandler(int sig)
{
    if (!g_crash_dumping.exchange(true)) {
        const int fd = ::open(g_crash_path,
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            writeCrashDump(fd, sig);
            ::close(fd);
        }
    }
    // Restore the default disposition and re-raise so the process
    // still terminates with the original signal (exit status and
    // core-dump behavior are preserved for the parent).
    struct sigaction dfl;
    std::memset(&dfl, 0, sizeof(dfl));
    dfl.sa_handler = SIG_DFL;
    ::sigemptyset(&dfl.sa_mask);
    ::sigaction(sig, &dfl, nullptr);
    ::raise(sig);
}

} // namespace

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
    case EventKind::Frame: return "frame";
    case EventKind::TrackingFailure: return "tracking_failure";
    case EventKind::DseEvaluation: return "dse_evaluation";
    case EventKind::SloBreach: return "slo_breach";
    case EventKind::Note: return "note";
    }
    return "unknown";
}

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

FlightRecorder::FlightRecorder()
{
    setCapacity(kCapacity);
}

void
FlightRecorder::setCapacity(size_t slots)
{
    size_t capacity = 64;
    while (capacity < slots && capacity < (1u << 20))
        capacity <<= 1;
    slots_ = std::make_unique<Slot[]>(capacity);
    capacity_ = capacity;
    mask_ = capacity - 1;
    head_.store(0, std::memory_order_relaxed);
}

void
FlightRecorder::record(EventKind kind, uint64_t frame, double a,
                       double b, const char *detail)
{
    if (!enabled())
        return;
    Event e;
    e.ns = slambench::metrics::now_ns();
    e.kind = kind;
    e.frame = frame;
    e.a = a;
    e.b = b;
    if (detail) {
        std::strncpy(e.detail, detail, sizeof(e.detail) - 1);
        e.detail[sizeof(e.detail) - 1] = '\0';
    }

    const uint64_t ticket =
        head_.fetch_add(1, std::memory_order_relaxed) + 1;
    Slot &slot = slots_[ticket & mask_];
    // Per-slot seqlock: invalidate, publish words, then publish the
    // ticket. Readers whose before/after sequence reads disagree (or
    // do not equal the expected ticket) discard the slot.
    slot.seq.store(0, std::memory_order_release);
    uint64_t words[kEventWords] = {};
    std::memcpy(words, &e, sizeof(e));
    for (size_t i = 0; i < kEventWords; ++i)
        slot.words[i].store(words[i], std::memory_order_relaxed);
    slot.seq.store(ticket, std::memory_order_release);
}

std::vector<Event>
FlightRecorder::snapshot() const
{
    std::vector<Event> out;
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (head == 0)
        return out;
    const uint64_t first =
        head > capacity_ ? head - capacity_ + 1 : 1;
    out.reserve(static_cast<size_t>(head - first + 1));
    for (uint64_t t = first; t <= head; ++t) {
        const Slot &slot = slots_[t & mask_];
        if (slot.seq.load(std::memory_order_acquire) != t)
            continue;
        uint64_t words[kEventWords];
        for (size_t i = 0; i < kEventWords; ++i)
            words[i] = slot.words[i].load(std::memory_order_relaxed);
        if (slot.seq.load(std::memory_order_acquire) != t)
            continue;
        Event e;
        std::memcpy(&e, words, sizeof(e));
        out.push_back(e);
    }
    return out;
}

void
FlightRecorder::reset()
{
    head_.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < capacity_; ++i)
        slots_[i].seq.store(0, std::memory_order_relaxed);
}

void
installCrashDump(const std::string &path,
                 const std::string &generator)
{
    std::strncpy(g_crash_path, path.c_str(),
                 sizeof(g_crash_path) - 1);
    g_crash_path[sizeof(g_crash_path) - 1] = '\0';
    std::strncpy(g_crash_generator, generator.c_str(),
                 sizeof(g_crash_generator) - 1);
    g_crash_generator[sizeof(g_crash_generator) - 1] = '\0';

    FlightRecorder::instance().setEnabled(true);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = slambenchCrashHandler;
    ::sigemptyset(&sa.sa_mask);
    for (const int sig : kCrashSignals)
        ::sigaction(sig, &sa, nullptr);
}

const char *
crashDumpPath()
{
    return g_crash_path;
}

void
writeCrashDump(int fd, int signal_number)
{
    using metrics::CrashIndexNode;
    FdWriter w(fd);

    w.str("{\n  \"schema\": \"slambench-crash-dump\",\n");
    w.str("  \"schema_version\": 1,\n");
    w.str("  \"signal\": ");
    w.i64(signal_number);
    w.str(",\n  \"generator\": ");
    w.jsonString(g_crash_generator);
    w.str(",\n  \"dump_ns\": ");
    w.u64(slambench::metrics::now_ns());

    // --- Flight-recorder ring, oldest surviving event first. ---
    const FlightRecorder &rec = FlightRecorder::instance();
    const uint64_t head = rec.head_.load(std::memory_order_acquire);
    w.str(",\n  \"events_recorded\": ");
    w.u64(head);
    w.str(",\n  \"events\": [");
    const uint64_t first =
        head > rec.capacity_ ? head - rec.capacity_ + 1 : 1;
    bool first_event = true;
    for (uint64_t t = first; t <= head && head > 0; ++t) {
        const FlightRecorder::Slot &slot = rec.slots_[t & rec.mask_];
        if (slot.seq.load(std::memory_order_acquire) != t)
            continue;
        uint64_t words[FlightRecorder::kEventWords];
        for (size_t i = 0; i < FlightRecorder::kEventWords; ++i)
            words[i] =
                slot.words[i].load(std::memory_order_relaxed);
        if (slot.seq.load(std::memory_order_acquire) != t)
            continue;
        Event e;
        std::memcpy(&e, words, sizeof(e));
        w.str(first_event ? "\n    {" : ",\n    {");
        first_event = false;
        w.str("\"ns\": ");
        w.u64(e.ns);
        w.str(", \"kind\": ");
        w.jsonString(eventKindName(e.kind));
        w.str(", \"frame\": ");
        w.u64(e.frame);
        w.str(", \"a\": ");
        w.dbl(e.a);
        w.str(", \"b\": ");
        w.dbl(e.b);
        w.str(", \"detail\": ");
        w.jsonString(e.detail);
        w.str("}");
    }
    w.str(first_event ? "]" : "\n  ]");

    // --- Registry snapshot via the lock-free crash index (stable
    // metric handles; no Registry mutex, no allocation). ---
    w.str(",\n  \"counters\": {");
    bool first_metric = true;
    for (const CrashIndexNode *node = metrics::crashIndexHead();
         node; node = node->next) {
        if (node->kind != CrashIndexNode::Kind::Counter)
            continue;
        w.str(first_metric ? "\n    " : ",\n    ");
        first_metric = false;
        w.jsonString(node->name);
        w.str(": ");
        w.u64(static_cast<const metrics::Counter *>(node->metric)
                  ->value());
    }
    w.str(first_metric ? "}" : "\n  }");

    w.str(",\n  \"gauges\": {");
    first_metric = true;
    for (const CrashIndexNode *node = metrics::crashIndexHead();
         node; node = node->next) {
        if (node->kind != CrashIndexNode::Kind::Gauge)
            continue;
        w.str(first_metric ? "\n    " : ",\n    ");
        first_metric = false;
        w.jsonString(node->name);
        w.str(": ");
        w.dbl(static_cast<const metrics::Gauge *>(node->metric)
                  ->value());
    }
    w.str(first_metric ? "}" : "\n  }");

    w.str(",\n  \"histograms\": {");
    first_metric = true;
    for (const CrashIndexNode *node = metrics::crashIndexHead();
         node; node = node->next) {
        if (node->kind != CrashIndexNode::Kind::Histogram)
            continue;
        const auto *histogram =
            static_cast<const metrics::LatencyHistogram *>(
                node->metric);
        w.str(first_metric ? "\n    " : ",\n    ");
        first_metric = false;
        w.jsonString(node->name);
        w.str(": {\"count\": ");
        w.u64(histogram->count());
        w.str(", \"sum\": ");
        w.dbl(histogram->sum());
        w.str(", \"min\": ");
        w.dbl(histogram->min());
        w.str(", \"max\": ");
        w.dbl(histogram->max());
        w.str(", \"p50\": ");
        w.dbl(histogram->quantile(0.50));
        w.str(", \"p90\": ");
        w.dbl(histogram->quantile(0.90));
        w.str(", \"p99\": ");
        w.dbl(histogram->quantile(0.99));
        w.str("}");
    }
    w.str(first_metric ? "}\n}\n" : "\n  }\n}\n");
    w.flush();
}

} // namespace slambench::support::telemetry
