#include "support/pmu.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace slambench::support::pmu {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

const char *
counterName(CounterId id)
{
    switch (id) {
      case CounterId::Cycles: return "cycles";
      case CounterId::Instructions: return "instructions";
      case CounterId::LlcLoads: return "llc_loads";
      case CounterId::LlcMisses: return "llc_misses";
      case CounterId::Branches: return "branches";
      case CounterId::BranchMisses: return "branch_misses";
      case CounterId::TaskClockNs: return "task_clock_ns";
      case CounterId::Count: break;
    }
    return "unknown";
}

Sample
sampleDelta(const Sample &end, const Sample &begin)
{
    Sample out;
    out.validMask = end.validMask & begin.validMask;
    for (size_t i = 0; i < kNumCounters; ++i)
        if (out.validMask & (1u << i))
            out.value[i] = end.value[i] - begin.value[i];
    return out;
}

void
sampleAccumulate(Sample &into, const Sample &other)
{
    for (size_t i = 0; i < kNumCounters; ++i)
        if (other.validMask & (1u << i))
            into.value[i] += other.value[i];
    into.validMask |= other.validMask;
}

Sample
sampleExclusive(const Sample &total, const Sample &children)
{
    Sample out = total;
    for (size_t i = 0; i < kNumCounters; ++i)
        if ((total.validMask & children.validMask) & (1u << i))
            out.value[i] =
                std::max(0.0, total.value[i] - children.value[i]);
    return out;
}

double
scaledCounterValue(uint64_t raw, uint64_t time_enabled,
                   uint64_t time_running)
{
    if (time_running == 0)
        return 0.0;
    if (time_running >= time_enabled)
        return static_cast<double>(raw);
    return static_cast<double>(raw) *
           (static_cast<double>(time_enabled) /
            static_cast<double>(time_running));
}

DerivedMetrics
deriveMetrics(const Sample &totals, double bytes)
{
    DerivedMetrics out;
    const double cycles = totals.get(CounterId::Cycles);
    const double instructions = totals.get(CounterId::Instructions);
    if (totals.valid(CounterId::Cycles) &&
        totals.valid(CounterId::Instructions) && cycles > 0.0) {
        out.ipc = instructions / cycles;
        out.hasIpc = true;
    }
    const double llc_loads = totals.get(CounterId::LlcLoads);
    if (totals.valid(CounterId::LlcLoads) &&
        totals.valid(CounterId::LlcMisses) && llc_loads > 0.0) {
        out.llcMissRate =
            totals.get(CounterId::LlcMisses) / llc_loads;
        out.hasLlcMissRate = true;
    }
    const double branches = totals.get(CounterId::Branches);
    if (totals.valid(CounterId::Branches) &&
        totals.valid(CounterId::BranchMisses) && branches > 0.0) {
        out.branchMissRate =
            totals.get(CounterId::BranchMisses) / branches;
        out.hasBranchMissRate = true;
    }
    if (totals.valid(CounterId::TaskClockNs)) {
        out.taskClockSeconds =
            totals.get(CounterId::TaskClockNs) * 1e-9;
        out.hasTaskClock = true;
        if (bytes > 0.0 && out.taskClockSeconds > 0.0) {
            out.bytesPerSecond = bytes / out.taskClockSeconds;
            out.hasBytesPerSecond = true;
        }
    }
    return out;
}

// --- backends --------------------------------------------------------

namespace {

/** The no-counter backend: reports stay schema-stable, reads fail. */
class NullBackend final : public CounterBackend
{
  public:
    const char *name() const override { return "null"; }
    uint32_t availableMask() const override { return 0; }

    std::unique_ptr<ThreadCounters>
    openThreadCounters() override
    {
        return nullptr;
    }
};

#ifdef __linux__

/** (type, config) pair for one CounterId's perf event attr. */
struct PerfEventSpec
{
    uint32_t type;
    uint64_t config;
};

PerfEventSpec
perfEventSpec(CounterId id)
{
    switch (id) {
      case CounterId::Cycles:
        return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
      case CounterId::Instructions:
        return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
      case CounterId::LlcLoads:
        return {PERF_TYPE_HW_CACHE,
                PERF_COUNT_HW_CACHE_LL |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16)};
      case CounterId::LlcMisses:
        return {PERF_TYPE_HW_CACHE,
                PERF_COUNT_HW_CACHE_LL |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)};
      case CounterId::Branches:
        return {PERF_TYPE_HARDWARE,
                PERF_COUNT_HW_BRANCH_INSTRUCTIONS};
      case CounterId::BranchMisses:
        return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES};
      case CounterId::TaskClockNs:
      case CounterId::Count: break;
    }
    return {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK};
}

int
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu,
              int group_fd, unsigned long flags)
{
    return static_cast<int>(
        ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,
                  flags));
}

/**
 * Open one calling-thread, any-CPU counter for @p id, joined to
 * @p group_fd (-1 = become leader). @return the fd or -1.
 */
int
openCounterFd(CounterId id, int group_fd)
{
    const PerfEventSpec spec = perfEventSpec(id);
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = spec.type;
    attr.config = spec.config;
    attr.disabled = group_fd == -1 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.inherit = 0;
    attr.read_format = PERF_FORMAT_GROUP |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    return perfEventOpen(&attr, 0, -1, group_fd, 0);
}

/**
 * One thread's perf counter group: a single group read() returns
 * every member atomically, and the enabled/running times expose
 * kernel multiplexing so values can be rescaled.
 */
class PerfThreadCounters final : public ThreadCounters
{
  public:
    /** @param mask counters the startup probe found openable. */
    explicit PerfThreadCounters(uint32_t mask)
    {
        fds_.fill(-1);
        int leader = -1;
        for (size_t i = 0; i < kNumCounters; ++i) {
            if (!(mask & (1u << i)))
                continue;
            const int fd =
                openCounterFd(static_cast<CounterId>(i), leader);
            if (fd < 0)
                continue;
            fds_[i] = fd;
            if (leader == -1)
                leader = fd;
            // Slot order in the group read buffer is open order.
            slots_.push_back(i);
        }
        leaderFd_ = leader;
        if (leader != -1) {
            ::ioctl(leader, PERF_EVENT_IOC_RESET,
                    PERF_IOC_FLAG_GROUP);
            ::ioctl(leader, PERF_EVENT_IOC_ENABLE,
                    PERF_IOC_FLAG_GROUP);
        }
    }

    ~PerfThreadCounters() override
    {
        for (const int fd : fds_)
            if (fd >= 0)
                ::close(fd);
    }

    bool
    read(Sample &out) override
    {
        out = Sample{};
        if (leaderFd_ < 0)
            return false;
        // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
        // then one value per member in open order.
        uint64_t buf[3 + kNumCounters];
        const ssize_t want = static_cast<ssize_t>(
            (3 + slots_.size()) * sizeof(uint64_t));
        const ssize_t got = ::read(leaderFd_, buf, sizeof(buf));
        if (got < want)
            return false;
        const uint64_t nr = buf[0];
        const uint64_t enabled = buf[1];
        const uint64_t running = buf[2];
        for (size_t s = 0; s < slots_.size() && s < nr; ++s)
            out.set(static_cast<CounterId>(slots_[s]),
                    scaledCounterValue(buf[3 + s], enabled,
                                       running));
        return out.validMask != 0;
    }

    /** @return counters actually opened on this thread. */
    uint32_t
    openedMask() const
    {
        uint32_t mask = 0;
        for (const size_t i : slots_)
            mask |= 1u << i;
        return mask;
    }

  private:
    std::array<int, kNumCounters> fds_;
    std::vector<size_t> slots_;
    int leaderFd_ = -1;
};

/** perf_event_open backend with the probe-time availability mask. */
class PerfBackend final : public CounterBackend
{
  public:
    explicit PerfBackend(uint32_t mask) : mask_(mask) {}

    const char *name() const override { return "perf"; }
    uint32_t availableMask() const override { return mask_; }

    std::unique_ptr<ThreadCounters>
    openThreadCounters() override
    {
        auto counters = std::make_unique<PerfThreadCounters>(mask_);
        if (counters->openedMask() == 0)
            return nullptr;
        return counters;
    }

  private:
    uint32_t mask_;
};

/**
 * Probe which counters this host will open for the calling thread.
 * Runs once per detectBackend(); fds are closed immediately.
 */
uint32_t
probeAvailableCounters()
{
    uint32_t mask = 0;
    for (size_t i = 0; i < kNumCounters; ++i) {
        const int fd =
            openCounterFd(static_cast<CounterId>(i), -1);
        if (fd >= 0) {
            mask |= 1u << i;
            ::close(fd);
        }
    }
    return mask;
}

#endif // __linux__

/** Names of the counters present in @p mask, comma-joined. */
std::string
maskNames(uint32_t mask)
{
    std::string out;
    for (size_t i = 0; i < kNumCounters; ++i) {
        if (!(mask & (1u << i)))
            continue;
        if (!out.empty())
            out += ",";
        out += counterName(static_cast<CounterId>(i));
    }
    return out.empty() ? "none" : out;
}

} // namespace

CounterBackend &
nullBackend()
{
    static NullBackend backend;
    return backend;
}

CounterBackend &
detectBackend()
{
    // Probe once; the WARN contract is "one line per process", so
    // the result (and the log line) is latched.
    static CounterBackend *detected = [] () -> CounterBackend * {
        if (std::getenv("SLAMBENCH_PMU_DISABLE")) {
            logWarn() << "pmu: disabled by SLAMBENCH_PMU_DISABLE; "
                         "running with the null backend "
                         "(reports stay schema-stable, no counters)";
            return &nullBackend();
        }
#ifdef __linux__
        const uint32_t mask = probeAvailableCounters();
        if (mask == 0) {
            logWarn() << "pmu: perf_event_open unavailable "
                         "(container restriction or "
                         "kernel.perf_event_paranoid too high); "
                         "running with the null backend "
                         "(reports stay schema-stable, no counters)";
            return &nullBackend();
        }
        static PerfBackend backend(mask);
        constexpr uint32_t hw_mask =
            counterBit(CounterId::Cycles) |
            counterBit(CounterId::Instructions) |
            counterBit(CounterId::LlcLoads) |
            counterBit(CounterId::LlcMisses) |
            counterBit(CounterId::Branches) |
            counterBit(CounterId::BranchMisses);
        if ((mask & hw_mask) != hw_mask)
            logWarn() << "pmu: some hardware counters are "
                         "unavailable on this host (no PMU in the "
                         "VM, or a restricted event set); "
                         "profiling with: " << maskNames(mask);
        return &backend;
#else
        logWarn() << "pmu: perf_event_open requires Linux; running "
                     "with the null backend (reports stay "
                     "schema-stable, no counters)";
        return &nullBackend();
#endif
    }();
    return *detected;
}

// --- profiler --------------------------------------------------------

namespace {

/** One open span on a thread's frame stack. */
struct Frame
{
    const char *name;
    Sample begin;
    /** Summed deltas of completed child spans, subtracted from the
     *  parent's delta for exclusive attribution. */
    Sample childSum;
};

/** Accumulated per-name totals (the shared table's value type). */
struct Totals
{
    uint64_t spans = 0;
    Sample sum;
    double bytes = 0.0;
};

/**
 * Per-thread profiling state. The counter group reopens when the
 * profiler generation moves past the one it was opened under
 * (start() after stop(), possibly with a different backend).
 */
struct ThreadState
{
    uint64_t generation = 0;
    std::unique_ptr<ThreadCounters> counters;
    std::vector<Frame> stack;
};

thread_local ThreadState t_state;

} // namespace

struct Profiler::Impl
{
    mutable std::mutex mutex;
    std::map<std::string, Totals> totals;
    CounterBackend *backend = nullptr;
    /** Bumped by start(); stale ThreadStates reopen lazily. */
    std::atomic<uint64_t> generation{0};

    /** This thread's state, (re)opening its counter group. */
    ThreadState &
    localState()
    {
        ThreadState &state = t_state;
        const uint64_t current =
            generation.load(std::memory_order_acquire);
        if (state.generation != current) {
            state.generation = current;
            state.counters.reset();
            state.stack.clear();
            CounterBackend *be;
            {
                std::lock_guard<std::mutex> lock(mutex);
                be = backend;
            }
            if (be)
                state.counters = be->openThreadCounters();
        }
        return state;
    }

    void
    readNow(ThreadState &state, Sample &out)
    {
        if (!state.counters || !state.counters->read(out))
            out = Sample{};
    }
};

Profiler::Impl &
Profiler::impl() const
{
    static Impl impl;
    return impl;
}

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::start(CounterBackend &backend)
{
    Impl &state = impl();
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.totals.clear();
        state.backend = &backend;
    }
    state.generation.fetch_add(1, std::memory_order_acq_rel);
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void
Profiler::stop()
{
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

CounterBackend *
Profiler::backend() const
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.backend;
}

void
Profiler::beginSpan(const char *name)
{
    Impl &state = impl();
    ThreadState &local = state.localState();
    Frame frame;
    frame.name = name;
    state.readNow(local, frame.begin);
    local.stack.push_back(std::move(frame));
}

void
Profiler::endSpan()
{
    Impl &state = impl();
    ThreadState &local = state.localState();
    if (local.stack.empty())
        return;
    Frame frame = std::move(local.stack.back());
    local.stack.pop_back();
    Sample now;
    state.readNow(local, now);
    const Sample delta = sampleDelta(now, frame.begin);
    const Sample self = sampleExclusive(delta, frame.childSum);
    if (!local.stack.empty())
        sampleAccumulate(local.stack.back().childSum, delta);
    std::lock_guard<std::mutex> lock(state.mutex);
    Totals &slot = state.totals[frame.name];
    slot.spans += 1;
    sampleAccumulate(slot.sum, self);
}

bool
Profiler::readThreadSample(Sample &out)
{
    out = Sample{};
    if (!enabled())
        return false;
    Impl &state = impl();
    ThreadState &local = state.localState();
    state.readNow(local, out);
    return out.validMask != 0;
}

void
Profiler::addSpanBytes(const std::string &name, double bytes)
{
    if (bytes <= 0.0)
        return;
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.totals[name].bytes += bytes;
}

std::vector<SpanStats>
Profiler::spanStats() const
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    std::vector<SpanStats> out;
    out.reserve(state.totals.size());
    for (const auto &[name, totals] : state.totals) {
        SpanStats stats;
        stats.name = name;
        stats.spans = totals.spans;
        stats.totals = totals.sum;
        stats.bytes = totals.bytes;
        out.push_back(std::move(stats));
    }
    return out;
}

void
Profiler::clear()
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.totals.clear();
}

// --- session + registry publication ---------------------------------

namespace {

/** Whether a Session armed profiling this process (report gate). */
std::atomic<bool> g_profiling_active{false};

} // namespace

bool
profilingActive()
{
    return g_profiling_active.load(std::memory_order_relaxed);
}

void
publishGauges()
{
    if (!profilingActive())
        return;
    auto &registry = metrics::Registry::instance();
    for (const SpanStats &stats : Profiler::instance().spanStats()) {
        const std::string prefix = "pmu." + stats.name + ".";
        registry.gauge(prefix + "spans")
            .set(static_cast<double>(stats.spans));
        const DerivedMetrics derived =
            deriveMetrics(stats.totals, stats.bytes);
        if (stats.totals.valid(CounterId::Cycles))
            registry.gauge(prefix + "cycles")
                .set(stats.totals.get(CounterId::Cycles));
        if (stats.totals.valid(CounterId::Instructions))
            registry.gauge(prefix + "instructions")
                .set(stats.totals.get(CounterId::Instructions));
        if (derived.hasIpc)
            registry.gauge(prefix + "ipc").set(derived.ipc);
        if (derived.hasLlcMissRate)
            registry.gauge(prefix + "llc_miss_rate")
                .set(derived.llcMissRate);
        if (derived.hasBranchMissRate)
            registry.gauge(prefix + "branch_miss_rate")
                .set(derived.branchMissRate);
        if (derived.hasTaskClock)
            registry.gauge(prefix + "task_clock_seconds")
                .set(derived.taskClockSeconds);
        if (derived.hasBytesPerSecond)
            registry.gauge(prefix + "bytes_per_second")
                .set(derived.bytesPerSecond);
    }
}

Session::Session(bool arm)
{
    if (!arm)
        return;
    armed_ = true;
    CounterBackend &backend = detectBackend();
    Profiler::instance().start(backend);
    g_profiling_active.store(true, std::memory_order_relaxed);
    logInfo() << "pmu: profiling armed (backend " << backend.name()
              << ", counters: "
              << maskNames(backend.availableMask()) << ")";
}

Session::Session(Session &&other) noexcept : armed_(other.armed_)
{
    other.armed_ = false;
}

Session &
Session::operator=(Session &&other) noexcept
{
    if (this != &other) {
        finish();
        armed_ = other.armed_;
        other.armed_ = false;
    }
    return *this;
}

Session::~Session() { finish(); }

void
Session::finish()
{
    if (!armed_)
        return;
    armed_ = false;
    Profiler &profiler = Profiler::instance();
    profiler.stop();
    publishGauges();
    for (const SpanStats &stats : profiler.spanStats()) {
        const DerivedMetrics derived =
            deriveMetrics(stats.totals, stats.bytes);
        std::string line = format("pmu: %-16s %6llu spans",
                                  stats.name.c_str(),
                                  static_cast<unsigned long long>(
                                      stats.spans));
        if (derived.hasIpc)
            line += format(", IPC %.2f", derived.ipc);
        if (derived.hasLlcMissRate)
            line += format(", LLC miss %.1f%%",
                           derived.llcMissRate * 100.0);
        if (derived.hasBranchMissRate)
            line += format(", branch miss %.2f%%",
                           derived.branchMissRate * 100.0);
        if (derived.hasTaskClock)
            line += format(", task-clock %.3f s",
                           derived.taskClockSeconds);
        if (derived.hasBytesPerSecond)
            line += format(", %.2f GB/s",
                           derived.bytesPerSecond * 1e-9);
        logInfo() << line;
    }
    // Keep profilingActive() true: the run report is usually written
    // after the session ends and must still see the pmu block.
}

} // namespace slambench::support::pmu
