#ifndef SLAMBENCH_SUPPORT_CSV_HPP
#define SLAMBENCH_SUPPORT_CSV_HPP

/**
 * @file
 * Small CSV writer used by the benchmark harness and DSE drivers to
 * emit figure data series.
 */

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace slambench::support {

/**
 * Streams rows of comma-separated values with a fixed header.
 *
 * Fields containing commas, quotes, or newlines are quoted per RFC
 * 4180. The writer does not own the output stream.
 */
class CsvWriter
{
  public:
    /**
     * @param out Destination stream; must outlive the writer.
     * @param columns Header names, written immediately.
     */
    CsvWriter(std::ostream &out, std::vector<std::string> columns);

    /** Begin a new row; any unfinished row is flushed first. */
    CsvWriter &beginRow();

    /** Append one string cell to the current row. */
    CsvWriter &cell(const std::string &value);
    /** Append one C-string cell to the current row. */
    CsvWriter &cell(const char *value);
    /** Append one floating-point cell (max_digits10 precision). */
    CsvWriter &cell(double value);
    /** Append one integer cell. */
    CsvWriter &cell(int64_t value);
    /** Append one unsigned integer cell. */
    CsvWriter &cell(uint64_t value);
    /** Append one integer cell. */
    CsvWriter &cell(int value) { return cell(static_cast<int64_t>(value)); }

    /** Flush the in-progress row, if any. Called by the destructor. */
    void endRow();

    ~CsvWriter();

    /** @return number of data rows fully written so far. */
    size_t rowCount() const { return rows_; }

    /** Quote a value per RFC 4180 if it needs quoting. */
    static std::string escape(const std::string &value);

  private:
    void writeRaw(const std::string &value);

    std::ostream &out_;
    size_t columns_;
    size_t cellsInRow_ = 0;
    bool rowOpen_ = false;
    size_t rows_ = 0;
};

} // namespace slambench::support

#endif // SLAMBENCH_SUPPORT_CSV_HPP
