#ifndef SLAMBENCH_SUPPORT_STRINGS_HPP
#define SLAMBENCH_SUPPORT_STRINGS_HPP

/**
 * @file
 * Small string helpers shared by configuration parsing and output
 * formatting.
 */

#include <string>
#include <vector>

namespace slambench::support {

/** Split @p text on @p sep; empty fields are preserved. */
std::vector<std::string> split(const std::string &text, char sep);

/** Remove ASCII whitespace from both ends. */
std::string trim(const std::string &text);

/** Lower-case ASCII copy of @p text. */
std::string toLower(const std::string &text);

/** @return true when @p text begins with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/**
 * printf-style formatting into a std::string.
 *
 * @param fmt printf format string.
 * @return the formatted text.
 */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Parse a double, reporting success.
 *
 * @param text Input text (leading/trailing spaces allowed).
 * @param[out] value Parsed value on success.
 * @return true when the whole trimmed string parsed.
 */
bool parseDouble(const std::string &text, double &value);

/**
 * Parse a long integer, reporting success.
 *
 * @param text Input text (leading/trailing spaces allowed).
 * @param[out] value Parsed value on success.
 * @return true when the whole trimmed string parsed.
 */
bool parseLong(const std::string &text, long &value);

} // namespace slambench::support

#endif // SLAMBENCH_SUPPORT_STRINGS_HPP
