#ifndef SLAMBENCH_SUPPORT_TRACE_HPP
#define SLAMBENCH_SUPPORT_TRACE_HPP

/**
 * @file
 * Lightweight per-kernel tracing: scoped spans, counter events, and
 * frame markers, exported as Chrome `chrome://tracing` JSON and a
 * per-frame aggregate CSV.
 *
 * SLAMBench's whole methodology is timing every pipeline stage; this
 * is the host-side instrumentation that makes those timings visible.
 * Span names for compute kernels are exactly the
 * `kfusion::kernelName()` strings, so a timeline opened in
 * chrome://tracing (or Perfetto) lines up 1:1 with the
 * `work_counters` CSV columns. See docs/OBSERVABILITY.md for the
 * span semantics and the export schemas.
 *
 * Cost model: when `SLAMBENCH_TRACE_ENABLED` is defined to 0 the
 * TRACE_* macros compile to nothing. When compiled in but not
 * runtime-enabled (the default), every entry point is a single
 * relaxed atomic load — no allocation, no event, no lock. When
 * enabled, events append to per-thread buffers without locking; the
 * registry lock is only taken once per thread (first event) and at
 * export time.
 */

#ifndef SLAMBENCH_TRACE_ENABLED
#define SLAMBENCH_TRACE_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/pmu.hpp"

namespace slambench::support::trace {

/** What a trace event describes; exported as the Chrome `cat` field. */
enum class Category : uint8_t {
    Kernel,  ///< A pipeline compute kernel (names match kernelName()).
    Phase,   ///< A coarser grouping span (frame, preprocess, ...).
    Worker,  ///< A thread-pool chunk executing on behalf of a span.
    Counter, ///< A named scalar sample (counter event).
    Marker,  ///< An instant event (frame boundaries).
};

/** @return the stable lowercase name of @p cat for exports. */
const char *categoryName(Category cat);

/** One recorded trace event (span begin/end, counter, or marker). */
struct Event
{
    /** Static string; spans use it to pair begins with ends. */
    const char *name = nullptr;
    /** Nanoseconds since the tracer epoch (start / last clear()). */
    uint64_t tsNs = 0;
    /** Pipeline frame index current when the event was recorded. */
    uint64_t frame = 0;
    /** Counter value; unused for spans and markers. */
    double value = 0.0;
    /** Event category. */
    Category cat = Category::Phase;
    /** Chrome phase: 'B' begin, 'E' end, 'C' counter, 'i' instant. */
    char phase = 'B';
};

/** Aggregate of all spans with one name within one frame. */
struct FrameKernelTotal
{
    uint64_t frame = 0;     ///< Frame index the spans began in.
    std::string name;       ///< Span (kernel) name.
    size_t spans = 0;       ///< Number of completed spans.
    double seconds = 0.0;   ///< Summed span wall time.
};

/** Aggregate of all spans with one name across the whole trace. */
struct KernelTotal
{
    std::string name;       ///< Span (kernel) name.
    size_t spans = 0;       ///< Number of completed spans.
    double seconds = 0.0;   ///< Summed span wall time.
};

/**
 * Process-wide trace recorder.
 *
 * Threads record into private buffers (no contention on the hot
 * path); buffers are owned by the tracer and outlive their threads,
 * so worker events survive pool destruction until export.
 */
class Tracer
{
  public:
    /** @return the process-wide tracer. */
    static Tracer &instance();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Turn recording on or off. Must not race in-flight spans:
     * enable before the measured region, disable after.
     */
    void setEnabled(bool on);

    /** @return whether events are being recorded (relaxed load). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Drop all recorded events and restart the time epoch. */
    void clear();

    /**
     * Record a frame-boundary marker and stamp subsequent events
     * (on every thread) with @p frame.
     */
    void setFrame(uint64_t frame);

    /** @return the frame index currently stamped onto events. */
    uint64_t
    frame() const
    {
        return frame_.load(std::memory_order_relaxed);
    }

    /** Record a span begin; callers must check enabled() first. */
    void beginSpan(const char *name, Category cat);
    /** Record the matching span end. */
    void endSpan(const char *name, Category cat);
    /** Record a counter sample; callers must check enabled() first. */
    void counter(const char *name, double value);

    /** @return total events recorded since the last clear(). */
    size_t eventCount() const;
    /** @return number of threads that have recorded any event. */
    size_t threadCount() const;
    /** @return per-thread event sequences (registration order). */
    std::vector<std::vector<Event>> eventsByThread() const;

    /**
     * Sum completed Category::Kernel spans per (frame, name).
     * Begin/end pairing is per thread (spans are RAII and nest).
     *
     * @return totals sorted by frame then name.
     */
    std::vector<FrameKernelTotal> frameKernelTotals() const;

    /** @return Category::Kernel span totals per name, name-sorted. */
    std::vector<KernelTotal> kernelTotals() const;

    /** Write the Chrome trace-event JSON document to @p os. */
    void writeChromeJson(std::ostream &os) const;
    /**
     * Write the Chrome trace-event JSON to @p path.
     * @return false when the file cannot be opened.
     */
    bool writeChromeJson(const std::string &path) const;

    /** Write the per-frame per-kernel aggregate CSV to @p os. */
    void writeFrameCsv(std::ostream &os) const;
    /**
     * Write the per-frame aggregate CSV to @p path.
     * @return false when the file cannot be opened.
     */
    bool writeFrameCsv(const std::string &path) const;

  private:
    struct ThreadBuffer
    {
        uint32_t tid = 0;
        std::vector<Event> events;
    };

    Tracer();

    /** @return this thread's buffer, registering it on first use. */
    ThreadBuffer &localBuffer();
    void record(const char *name, Category cat, char phase,
                double value);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> frame_{0};
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * @return the name of the innermost open span on this thread, or
 * nullptr outside any span. The thread pool uses this to attribute
 * worker-side chunks to the kernel that dispatched them. Maintained
 * by ScopedSpan whenever tracing *or* PMU profiling is armed, so a
 * PMU-only run still attributes worker chunks to their kernel.
 */
const char *currentSpanName();

namespace detail {
/** Push onto this thread's current-span stack (ScopedSpan only). */
void pushCurrentSpan(const char *name);
/** Pop this thread's current-span stack (ScopedSpan only). */
void popCurrentSpan();
} // namespace detail

/**
 * RAII span: records a begin event on construction and the matching
 * end on destruction. Kernel and Worker spans also delimit a PMU
 * counter interval when `--pmu` profiling is armed (support/pmu.hpp),
 * so hardware-counter attribution rides the same span names as the
 * wall-clock timeline. Two relaxed loads when both subsystems are
 * disabled.
 */
class ScopedSpan
{
  public:
    /**
     * @param name Static string naming the span (must outlive the
     *     tracer; string literals and kernelName() qualify).
     * @param cat Category exported as the Chrome `cat` field.
     */
    explicit ScopedSpan(const char *name,
                        Category cat = Category::Phase)
    {
        Tracer &tracer = Tracer::instance();
        const bool traced = tracer.enabled();
        // PMU attribution covers compute spans only: kernels and
        // the worker chunks they dispatch. Phase spans would
        // double-count their kernels' exclusive totals.
        const bool pmu_active =
            pmu::enabled() && (cat == Category::Kernel ||
                               cat == Category::Worker);
        if (!traced && !pmu_active)
            return;
        name_ = name;
        cat_ = cat;
        traced_ = traced;
        pmuActive_ = pmu_active;
        detail::pushCurrentSpan(name);
        if (traced)
            tracer.beginSpan(name, cat);
        if (pmu_active)
            pmu::Profiler::instance().beginSpan(name);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (!name_)
            return;
        if (pmuActive_)
            pmu::Profiler::instance().endSpan();
        if (traced_)
            Tracer::instance().endSpan(name_, cat_);
        detail::popCurrentSpan();
    }

  private:
    const char *name_ = nullptr;
    Category cat_ = Category::Phase;
    bool traced_ = false;
    bool pmuActive_ = false;
};

/** Record a counter sample if tracing is enabled. */
inline void
counterEvent(const char *name, double value)
{
    Tracer &tracer = Tracer::instance();
    if (tracer.enabled())
        tracer.counter(name, value);
}

/** Record a frame boundary if tracing is enabled. */
inline void
frameMarker(uint64_t frame)
{
    Tracer &tracer = Tracer::instance();
    if (tracer.enabled())
        tracer.setFrame(frame);
}

/**
 * RAII trace capture for a CLI run: enables the tracer on
 * construction when at least one output path is non-empty, and on
 * destruction exports the requested files and disables tracing.
 */
class Session
{
  public:
    /** Inactive session (tracing stays off). */
    Session() = default;

    /**
     * @param json_path Chrome trace output path ("" = skip).
     * @param csv_path Per-frame aggregate CSV path ("" = skip).
     */
    Session(std::string json_path, std::string csv_path);

    Session(Session &&other) noexcept;
    Session &operator=(Session &&other) noexcept;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Exports the requested files when the session is active. */
    ~Session();

    /** @return whether this session turned tracing on. */
    bool
    active() const
    {
        return armed_;
    }

  private:
    void finish();

    std::string jsonPath_;
    std::string csvPath_;
    bool armed_ = false;
};

} // namespace slambench::support::trace

#if SLAMBENCH_TRACE_ENABLED

#define SB_TRACE_CONCAT_IMPL(a, b) a##b
#define SB_TRACE_CONCAT(a, b) SB_TRACE_CONCAT_IMPL(a, b)

/** Open a Category::Phase span covering the rest of this scope. */
#define TRACE_SCOPE(name)                                            \
    ::slambench::support::trace::ScopedSpan SB_TRACE_CONCAT(         \
        sb_trace_span_, __LINE__)(name)

/** Record a named scalar sample (Chrome counter track). */
#define TRACE_COUNTER(name, value)                                   \
    ::slambench::support::trace::counterEvent(                       \
        name, static_cast<double>(value))

/** Mark a frame boundary; later events belong to frame @p index. */
#define TRACE_FRAME(index)                                           \
    ::slambench::support::trace::frameMarker(                        \
        static_cast<uint64_t>(index))

#else // !SLAMBENCH_TRACE_ENABLED

#define TRACE_SCOPE(name) ((void)0)
#define TRACE_COUNTER(name, value) ((void)0)
#define TRACE_FRAME(index) ((void)0)

#endif // SLAMBENCH_TRACE_ENABLED

#endif // SLAMBENCH_SUPPORT_TRACE_HPP
