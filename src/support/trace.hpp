#ifndef SLAMBENCH_SUPPORT_TRACE_HPP
#define SLAMBENCH_SUPPORT_TRACE_HPP

/**
 * @file
 * Lightweight per-kernel tracing: scoped spans, counter events, and
 * frame markers, exported as Chrome `chrome://tracing` JSON and a
 * per-frame aggregate CSV.
 *
 * SLAMBench's whole methodology is timing every pipeline stage; this
 * is the host-side instrumentation that makes those timings visible.
 * Span names for compute kernels are exactly the
 * `kfusion::kernelName()` strings, so a timeline opened in
 * chrome://tracing (or Perfetto) lines up 1:1 with the
 * `work_counters` CSV columns. See docs/OBSERVABILITY.md for the
 * span semantics and the export schemas.
 *
 * Cost model: when `SLAMBENCH_TRACE_ENABLED` is defined to 0 the
 * TRACE_* macros compile to nothing. When compiled in but not
 * runtime-enabled (the default), every entry point is a single
 * relaxed atomic load — no allocation, no event, no lock. When
 * enabled, events append to per-thread buffers without locking; the
 * registry lock is only taken once per thread (first event) and at
 * export time.
 */

#ifndef SLAMBENCH_TRACE_ENABLED
#define SLAMBENCH_TRACE_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/pmu.hpp"

namespace slambench::support::trace {

/** What a trace event describes; exported as the Chrome `cat` field. */
enum class Category : uint8_t {
    Kernel,  ///< A pipeline compute kernel (names match kernelName()).
    Phase,   ///< A coarser grouping span (frame, preprocess, ...).
    Worker,  ///< A thread-pool chunk executing on behalf of a span.
    Counter, ///< A named scalar sample (counter event).
    Marker,  ///< An instant event (frame boundaries).
};

/** @return the stable lowercase name of @p cat for exports. */
const char *categoryName(Category cat);

/** One recorded trace event (span begin/end, counter, or marker). */
struct Event
{
    /** Static string; spans use it to pair begins with ends. */
    const char *name = nullptr;
    /** Nanoseconds since the tracer epoch (start / last clear()). */
    uint64_t tsNs = 0;
    /** Pipeline frame index current when the event was recorded. */
    uint64_t frame = 0;
    /** Counter value; unused for spans and markers. */
    double value = 0.0;
    /** Event category. */
    Category cat = Category::Phase;
    /** Chrome phase: 'B' begin, 'E' end, 'C' counter, 'i' instant. */
    char phase = 'B';
};

/** Aggregate of all spans with one name within one frame. */
struct FrameKernelTotal
{
    uint64_t frame = 0;     ///< Frame index the spans began in.
    std::string name;       ///< Span (kernel) name.
    size_t spans = 0;       ///< Number of completed spans.
    double seconds = 0.0;   ///< Summed span wall time.
};

/** Aggregate of all spans with one name across the whole trace. */
struct KernelTotal
{
    std::string name;       ///< Span (kernel) name.
    size_t spans = 0;       ///< Number of completed spans.
    double seconds = 0.0;   ///< Summed span wall time.
};

/**
 * Process-wide trace recorder.
 *
 * Threads record into private buffers (no contention on the hot
 * path); buffers are owned by the tracer and outlive their threads,
 * so worker events survive pool destruction until export.
 */
class Tracer
{
  public:
    /** @return the process-wide tracer. */
    static Tracer &instance();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Turn recording on or off. Must not race in-flight spans:
     * enable before the measured region, disable after.
     */
    void setEnabled(bool on);

    /** @return whether events are being recorded (relaxed load). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Drop all recorded events and restart the time epoch. */
    void clear();

    /**
     * Record a frame-boundary marker and stamp subsequent events
     * (on every thread) with @p frame.
     */
    void setFrame(uint64_t frame);

    /** @return the frame index currently stamped onto events. */
    uint64_t
    frame() const
    {
        return frame_.load(std::memory_order_relaxed);
    }

    /** Record a span begin; callers must check enabled() first. */
    void beginSpan(const char *name, Category cat);
    /** Record the matching span end. */
    void endSpan(const char *name, Category cat);
    /** Record a counter sample; callers must check enabled() first. */
    void counter(const char *name, double value);

    /** @return total events recorded since the last clear(). */
    size_t eventCount() const;
    /** @return number of threads that have recorded any event. */
    size_t threadCount() const;
    /** @return per-thread event sequences (registration order). */
    std::vector<std::vector<Event>> eventsByThread() const;

    /**
     * Sum completed Category::Kernel spans per (frame, name).
     * Begin/end pairing is per thread (spans are RAII and nest).
     *
     * @return totals sorted by frame then name.
     */
    std::vector<FrameKernelTotal> frameKernelTotals() const;

    /** @return Category::Kernel span totals per name, name-sorted. */
    std::vector<KernelTotal> kernelTotals() const;

    /** Write the Chrome trace-event JSON document to @p os. */
    void writeChromeJson(std::ostream &os) const;
    /**
     * Write the Chrome trace-event JSON to @p path.
     * @return false when the file cannot be opened.
     */
    bool writeChromeJson(const std::string &path) const;

    /** Write the per-frame per-kernel aggregate CSV to @p os. */
    void writeFrameCsv(std::ostream &os) const;
    /**
     * Write the per-frame aggregate CSV to @p path.
     * @return false when the file cannot be opened.
     */
    bool writeFrameCsv(const std::string &path) const;

  private:
    struct ThreadBuffer
    {
        uint32_t tid = 0;
        std::vector<Event> events;
    };

    Tracer();

    /** @return this thread's buffer, registering it on first use. */
    ThreadBuffer &localBuffer();
    void record(const char *name, Category cat, char phase,
                double value);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> frame_{0};
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * @return the name of the innermost open span on this thread, or
 * nullptr outside any span. The thread pool uses this to attribute
 * worker-side chunks to the kernel that dispatched them. Maintained
 * by ScopedSpan whenever tracing *or* PMU profiling is armed, so a
 * PMU-only run still attributes worker chunks to their kernel.
 */
const char *currentSpanName();

namespace detail {
/** Push onto this thread's current-span stack (ScopedSpan only). */
void pushCurrentSpan(const char *name);
/** Pop this thread's current-span stack (ScopedSpan only). */
void popCurrentSpan();
} // namespace detail

// --- Request tracing ---------------------------------------------
//
// Per-request (tenant frame) span trees with tail-based retention,
// layered on the same ScopedSpan instrumentation as the Chrome
// timeline above. A TraceContext is created per (tenant, frame) by
// the serve scheduler (or the bench frame loop), carried across
// ThreadPool task boundaries by the pool itself, and installed on the
// executing thread — so every ScopedSpan that opens while the context
// is active records a child span into the trace automatically.
// Completed traces are retained with probability
// RequestTraceOptions::sampleRate, but frames that breach an SLO,
// lose tracking, or land in the top bucket of their latency histogram
// are always retained (the pathological tail is captured by
// construction). See docs/OBSERVABILITY.md "Request tracing".

/**
 * Identity of one in-flight request on one thread: the trace it
 * belongs to plus the innermost open request span (the parent of any
 * span opened next). Copied by value across task boundaries.
 */
struct TraceContext
{
    /** Nonzero id of the trace, 0 = no active trace. */
    uint64_t traceId = 0;
    /** Innermost open request-span id (parent for new spans). */
    uint64_t spanId = 0;

    /** @return whether this context names a live trace. */
    bool active() const { return traceId != 0; }
};

/** One completed span within a retained request trace. */
struct RequestSpan
{
    uint64_t spanId = 0;       ///< Unique within the process.
    uint64_t parentSpanId = 0; ///< 0 = child of the trace root.
    /** Static span name (same strings as the Chrome timeline). */
    const char *name = nullptr;
    Category cat = Category::Phase;
    uint64_t startNs = 0; ///< metrics::now_ns() at open.
    uint64_t endNs = 0;   ///< metrics::now_ns() at close.
};

/** Why a completed trace was (or would be) retained. */
struct RetentionFlags
{
    bool sloBreach = false;    ///< Frame breached an SLO threshold.
    bool trackingLost = false; ///< Pose was rejected this frame.
    bool topBucket = false;    ///< Landed in the top populated
                               ///< latency-histogram bucket.
    bool sampled = false;      ///< Kept by the probabilistic sampler.

    /** @return whether any always-retain flag is set. */
    bool
    flagged() const
    {
        return sloBreach || trackingLost || topBucket;
    }
};

/** One retained (completed) request trace. */
struct RetainedTrace
{
    uint64_t traceId = 0;
    uint64_t rootSpanId = 0; ///< Synthesized root covering the trace.
    std::string tenant;      ///< Tenant id ("" outside serve).
    uint64_t frame = 0;      ///< Tenant-local frame index.
    uint64_t startNs = 0;    ///< Trace begin (metrics::now_ns()).
    uint64_t endNs = 0;      ///< Trace finish.
    double durationSeconds = 0.0; ///< Frame wall time (reported).
    RetentionFlags retention;
    /** Completed spans, in completion order (children close before
     *  parents; the root span is last). */
    std::vector<RequestSpan> spans;
    /** Spans discarded once maxSpansPerTrace was reached. */
    uint64_t spansDropped = 0;
};

/** Tuning of the request tracer. */
struct RequestTraceOptions
{
    /** Probability an unflagged completed trace is retained. */
    double sampleRate = 0.01;
    /** Retained traces kept (FIFO eviction beyond this). */
    size_t maxRetained = 256;
    /** Spans recorded per trace (further spans are counted only). */
    size_t maxSpansPerTrace = 512;
    /** In-flight traces tracked (oldest evicted beyond this). */
    size_t maxInflight = 1024;
};

/** Completion report for one request trace. */
struct RequestTraceFinish
{
    /** Frame wall time, seconds (reported; the span tree's root
     *  duration is measured independently). */
    double durationSeconds = 0.0;
    /** Always-retain flags (sampled is decided by the tracer). */
    bool sloBreach = false;
    bool trackingLost = false;
    bool topBucket = false;
    /** Registry histogram name this frame was recorded into; a
     *  retained trace becomes that histogram's exemplar ("" = no
     *  exemplar). */
    std::string exemplarMetric;
};

/** Exemplar: the retained trace behind one histogram's samples. */
struct TraceExemplar
{
    uint64_t traceId = 0;
    double value = 0.0; ///< The recorded sample (seconds).
    uint64_t ns = 0;    ///< When the exemplar was updated.
};

namespace detail {
/** Master gate for request tracing (relaxed; see armed()). */
extern std::atomic<bool> g_request_tracing;

/**
 * Open a request span on this thread if a context is active.
 * @return whether a span was opened (ids/start filled in).
 */
bool beginRequestSpan(uint64_t *span_id, uint64_t *parent_id,
                      uint64_t *start_ns);
/** Close the span opened by beginRequestSpan on this thread. */
void endRequestSpan(const char *name, Category cat, uint64_t span_id,
                    uint64_t parent_id, uint64_t start_ns);
} // namespace detail

/** @return whether request tracing is armed (single relaxed load). */
inline bool
requestTracingArmed()
{
    return detail::g_request_tracing.load(std::memory_order_relaxed);
}

/** @return the thread's active request context (inactive outside
 *  any installed context). */
TraceContext currentTraceContext();

/**
 * Process-wide request-trace store: in-flight traces accumulate
 * spans; finish() applies the tail-based retention policy and moves
 * keepers into a bounded FIFO of retained traces, queryable by the
 * /tracez endpoint. All methods are thread-safe; when disarmed,
 * begin() returns an inactive context and span recording is gated
 * off by requestTracingArmed().
 */
class RequestTracer
{
  public:
    /** @return the process-wide request tracer. */
    static RequestTracer &instance();

    RequestTracer(const RequestTracer &) = delete;
    RequestTracer &operator=(const RequestTracer &) = delete;

    /** Arm with @p options, dropping all previous state. */
    void configure(const RequestTraceOptions &options);

    /** Disarm; retained traces stay queryable until clear(). */
    void disarm();

    /** Drop every in-flight and retained trace and all exemplars. */
    void clear();

    /** @return whether begin()/span recording are armed. */
    bool enabled() const { return requestTracingArmed(); }

    /** @return the active options (last configure()). */
    RequestTraceOptions options() const;

    /**
     * Start a trace for one (tenant, frame) request.
     *
     * @return the context to install around the request's work, or
     * an inactive context when disarmed (all downstream recording
     * then gates off).
     */
    TraceContext begin(const std::string &tenant, uint64_t frame);

    /**
     * Complete the trace named by @p ctx: decide retention (always
     * when an always-retain flag is set in @p finish, else with
     * probability sampleRate), synthesize the root span, and — when
     * retained and finish.exemplarMetric is set — publish the trace
     * as that histogram's exemplar.
     */
    void finish(const TraceContext &ctx,
                const RequestTraceFinish &finish);

    /** Append one completed span to an in-flight trace (no-op when
     *  the trace already finished or was evicted). */
    void addSpan(uint64_t trace_id, const RequestSpan &span);

    /** @return a fresh process-unique span id. */
    uint64_t
    nextSpanId()
    {
        return nextSpanId_.fetch_add(1, std::memory_order_relaxed) +
               1;
    }

    /** @return traces started / retained since the last clear(). */
    uint64_t tracesStarted() const;
    uint64_t tracesRetained() const;

    /** @return retained traces, newest first. */
    std::vector<RetainedTrace> retainedSnapshot() const;

    /** Copy the retained trace @p trace_id into @p out.
     *  @return whether it was found. */
    bool findTrace(uint64_t trace_id, RetainedTrace *out) const;

    /** Copy the exemplar of histogram @p metric into @p out.
     *  @return whether one exists. */
    bool exemplarFor(const std::string &metric,
                     TraceExemplar *out) const;

  private:
    RequestTracer() = default;

    mutable std::mutex mutex_;
    RequestTraceOptions options_;
    /** In-flight traces by id, with FIFO eviction order. */
    std::unordered_map<uint64_t, RetainedTrace> inflight_;
    std::deque<uint64_t> inflightOrder_;
    /** Retained traces, oldest first (FIFO eviction). */
    std::deque<RetainedTrace> retained_;
    /** Exemplars by registry histogram name. */
    std::unordered_map<std::string, TraceExemplar> exemplars_;
    uint64_t tracesStarted_ = 0;
    uint64_t tracesRetained_ = 0;
    uint64_t idSeed_ = 0;
    std::atomic<uint64_t> nextTraceSeq_{0};
    std::atomic<uint64_t> nextSpanId_{0};
};

/**
 * RAII installation of a request context on the current thread:
 * ScopedSpans opened in scope record into the context's trace, and
 * log records carry `trace_id=...` correlation. Restores the
 * previous context (and log correlation id) on destruction. An
 * inactive context installs nothing.
 */
class ScopedTraceContext
{
  public:
    explicit ScopedTraceContext(const TraceContext &ctx);
    ~ScopedTraceContext();

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) =
        delete;

  private:
    TraceContext prev_;
    bool installed_ = false;
};

/** @return @p trace_id as the 16-hex-digit form used by /tracez,
 *  exemplars, and log correlation. */
std::string formatTraceId(uint64_t trace_id);

/** Parse the formatTraceId() form (with or without leading 0x).
 *  @return 0 on malformed input. */
uint64_t parseTraceId(const std::string &text);

/**
 * RAII arming of the request tracer for one run (the `--trace-*`
 * flag family; mirrors pmu::Session). Disarms on destruction;
 * inactive when constructed with @p armed false.
 */
class RequestTraceSession
{
  public:
    RequestTraceSession() = default;
    RequestTraceSession(bool armed,
                        const RequestTraceOptions &options);
    ~RequestTraceSession();

    RequestTraceSession(RequestTraceSession &&other) noexcept;
    RequestTraceSession &
    operator=(RequestTraceSession &&other) noexcept;
    RequestTraceSession(const RequestTraceSession &) = delete;
    RequestTraceSession &
    operator=(const RequestTraceSession &) = delete;

    /** @return whether this session armed the tracer. */
    bool active() const { return armed_; }

  private:
    bool armed_ = false;
};

/**
 * RAII span: records a begin event on construction and the matching
 * end on destruction. Kernel and Worker spans also delimit a PMU
 * counter interval when `--pmu` profiling is armed (support/pmu.hpp),
 * so hardware-counter attribution rides the same span names as the
 * wall-clock timeline. Two relaxed loads when both subsystems are
 * disabled.
 */
class ScopedSpan
{
  public:
    /**
     * @param name Static string naming the span (must outlive the
     *     tracer; string literals and kernelName() qualify).
     * @param cat Category exported as the Chrome `cat` field.
     */
    explicit ScopedSpan(const char *name,
                        Category cat = Category::Phase)
    {
        Tracer &tracer = Tracer::instance();
        const bool traced = tracer.enabled();
        // PMU attribution covers compute spans only: kernels and
        // the worker chunks they dispatch. Phase spans would
        // double-count their kernels' exclusive totals.
        const bool pmu_active =
            pmu::enabled() && (cat == Category::Kernel ||
                               cat == Category::Worker);
        // Request tracing records spans only while a context is
        // installed on this thread (beginRequestSpan checks).
        const bool request =
            requestTracingArmed() &&
            detail::beginRequestSpan(&reqSpanId_, &reqParentId_,
                                     &reqStartNs_);
        if (!traced && !pmu_active && !request)
            return;
        name_ = name;
        cat_ = cat;
        traced_ = traced;
        pmuActive_ = pmu_active;
        requestActive_ = request;
        if (traced || pmu_active)
            detail::pushCurrentSpan(name);
        if (traced)
            tracer.beginSpan(name, cat);
        if (pmu_active)
            pmu::Profiler::instance().beginSpan(name);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (!name_)
            return;
        if (pmuActive_)
            pmu::Profiler::instance().endSpan();
        if (traced_)
            Tracer::instance().endSpan(name_, cat_);
        if (traced_ || pmuActive_)
            detail::popCurrentSpan();
        if (requestActive_)
            detail::endRequestSpan(name_, cat_, reqSpanId_,
                                   reqParentId_, reqStartNs_);
    }

  private:
    const char *name_ = nullptr;
    Category cat_ = Category::Phase;
    bool traced_ = false;
    bool pmuActive_ = false;
    bool requestActive_ = false;
    uint64_t reqSpanId_ = 0;
    uint64_t reqParentId_ = 0;
    uint64_t reqStartNs_ = 0;
};

/** Record a counter sample if tracing is enabled. */
inline void
counterEvent(const char *name, double value)
{
    Tracer &tracer = Tracer::instance();
    if (tracer.enabled())
        tracer.counter(name, value);
}

/** Record a frame boundary if tracing is enabled. */
inline void
frameMarker(uint64_t frame)
{
    Tracer &tracer = Tracer::instance();
    if (tracer.enabled())
        tracer.setFrame(frame);
}

/**
 * RAII trace capture for a CLI run: enables the tracer on
 * construction when at least one output path is non-empty, and on
 * destruction exports the requested files and disables tracing.
 */
class Session
{
  public:
    /** Inactive session (tracing stays off). */
    Session() = default;

    /**
     * @param json_path Chrome trace output path ("" = skip).
     * @param csv_path Per-frame aggregate CSV path ("" = skip).
     */
    Session(std::string json_path, std::string csv_path);

    Session(Session &&other) noexcept;
    Session &operator=(Session &&other) noexcept;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Exports the requested files when the session is active. */
    ~Session();

    /** @return whether this session turned tracing on. */
    bool
    active() const
    {
        return armed_;
    }

  private:
    void finish();

    std::string jsonPath_;
    std::string csvPath_;
    bool armed_ = false;
};

} // namespace slambench::support::trace

#if SLAMBENCH_TRACE_ENABLED

#define SB_TRACE_CONCAT_IMPL(a, b) a##b
#define SB_TRACE_CONCAT(a, b) SB_TRACE_CONCAT_IMPL(a, b)

/** Open a Category::Phase span covering the rest of this scope. */
#define TRACE_SCOPE(name)                                            \
    ::slambench::support::trace::ScopedSpan SB_TRACE_CONCAT(         \
        sb_trace_span_, __LINE__)(name)

/** Record a named scalar sample (Chrome counter track). */
#define TRACE_COUNTER(name, value)                                   \
    ::slambench::support::trace::counterEvent(                       \
        name, static_cast<double>(value))

/** Mark a frame boundary; later events belong to frame @p index. */
#define TRACE_FRAME(index)                                           \
    ::slambench::support::trace::frameMarker(                        \
        static_cast<uint64_t>(index))

#else // !SLAMBENCH_TRACE_ENABLED

#define TRACE_SCOPE(name) ((void)0)
#define TRACE_COUNTER(name, value) ((void)0)
#define TRACE_FRAME(index) ((void)0)

#endif // SLAMBENCH_TRACE_ENABLED

#endif // SLAMBENCH_SUPPORT_TRACE_HPP
