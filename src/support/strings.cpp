#include "support/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace slambench::support {

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> fields;
    std::string current;
    for (char c : text) {
        if (c == sep) {
            fields.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    fields.push_back(current);
    return fields;
}

std::string
trim(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::string
toLower(const std::string &text)
{
    std::string lower = text;
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return lower;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return "";
    }
    std::string text(static_cast<size_t>(needed), '\0');
    std::vsnprintf(text.data(), text.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return text;
}

bool
parseDouble(const std::string &text, double &value)
{
    const std::string t = trim(text);
    if (t.empty())
        return false;
    char *end = nullptr;
    const double parsed = std::strtod(t.c_str(), &end);
    if (end != t.c_str() + t.size())
        return false;
    value = parsed;
    return true;
}

bool
parseLong(const std::string &text, long &value)
{
    const std::string t = trim(text);
    if (t.empty())
        return false;
    char *end = nullptr;
    const long parsed = std::strtol(t.c_str(), &end, 10);
    if (end != t.c_str() + t.size())
        return false;
    value = parsed;
    return true;
}

} // namespace slambench::support
