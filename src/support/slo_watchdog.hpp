#ifndef SLAMBENCH_SUPPORT_SLO_WATCHDOG_HPP
#define SLAMBENCH_SUPPORT_SLO_WATCHDOG_HPP

/**
 * @file
 * Live service-level-objective watchdog plus the per-frame live
 * telemetry hook.
 *
 * The watchdog evaluates configurable thresholds — frame-time p99,
 * per-frame ATE, consecutive tracking failures, and thread-pool
 * queue stall — against live metric snapshots on every processed
 * frame. A breached SLO is latched: it flips /healthz (served by
 * support/telemetry_server.hpp) to 503, emits exactly one structured
 * Warn log line, bumps the `slo.breaches` counter, zeroes the
 * `slo.healthy` gauge, and records an SloBreach flight-recorder
 * event. Breaches stay latched until reset() so a scrape after the
 * incident still sees it.
 *
 * frameTick() is the single hook the frame loops call: it records
 * the `live.*` registry metrics, feeds the flight recorder, and runs
 * the watchdog. It is gated by liveTelemetry() — a single relaxed
 * atomic load when telemetry is off, keeping the frame loop
 * zero-cost for non-telemetry runs.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace slambench::support::telemetry {

/**
 * Threshold set for the watchdog. A threshold <= 0 disables that
 * check; the default-constructed set disables everything.
 */
struct SloThresholds
{
    /** Max acceptable live frame-time p99, seconds. */
    double frameP99Seconds = 0.0;
    /** Max acceptable per-frame ATE, meters. */
    double maxAteMeters = 0.0;
    /** Max acceptable consecutive tracking failures. */
    int64_t maxConsecutiveTrackingFailures = 0;
    /** Max time a non-empty pool queue may go without completing a
     *  task before it counts as stalled, seconds. */
    double poolQueueStallSeconds = 0.0;

    /** @return whether any threshold is active. */
    bool
    anyEnabled() const
    {
        return frameP99Seconds > 0.0 || maxAteMeters > 0.0 ||
               maxConsecutiveTrackingFailures > 0 ||
               poolQueueStallSeconds > 0.0;
    }
};

/** One latched SLO breach. */
struct SloBreach
{
    /** Stable breach identifier ("frame_p99_seconds", "ate_meters",
     *  "consecutive_tracking_failures", "pool_queue_stall"). */
    std::string slo;
    double value = 0.0; ///< Observed value at breach time.
    double limit = 0.0; ///< The configured threshold.
    uint64_t frame = 0; ///< Frame index at breach time.
    uint64_t ns = 0;    ///< Monotonic timestamp of the breach.
};

/**
 * Process-wide watchdog. configure() arms it; onFrame() /
 * checkPools() evaluate the thresholds; healthy() is the /healthz
 * verdict. Thread-safe; the hot-path guards are relaxed atomics.
 */
class SloWatchdog
{
  public:
    /** @return the process-wide watchdog. */
    static SloWatchdog &instance();

    SloWatchdog(const SloWatchdog &) = delete;
    SloWatchdog &operator=(const SloWatchdog &) = delete;

    /** Arm the watchdog with @p thresholds (replacing any previous
     *  set) and clear latched breaches. */
    void configure(const SloThresholds &thresholds);

    /** Disarm and clear latched breaches (tests, endpoint teardown). */
    void reset();

    /** @return whether any threshold is armed. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** @return a copy of the armed thresholds (all-disabled when the
     *  watchdog is not configured). The request tracer's tail
     *  retention compares each frame against these directly. */
    SloThresholds thresholds() const;

    /**
     * Evaluate the frame-scoped SLOs after one processed frame.
     *
     * @param frame Frame index.
     * @param ateMeters Live per-frame ATE, meters.
     * @param consecutiveFailures Current run of tracking failures.
     */
    void onFrame(uint64_t frame, double ateMeters,
                 int64_t consecutiveFailures);

    /**
     * Evaluate the pool-queue-stall SLO against every live
     * ThreadPool (queue non-empty and tasksExecuted() unchanged for
     * longer than the threshold). Called from frameTick(); cheap
     * when the stall threshold is disabled.
     *
     * @param frame Frame index attributed to a detected stall.
     */
    void checkPools(uint64_t frame);

    /** @return false once any SLO has been breached (latched). */
    bool
    healthy() const
    {
        return healthy_.load(std::memory_order_relaxed);
    }

    /** @return copies of all latched breaches, oldest first. */
    std::vector<SloBreach> breaches() const;

    /** @return the /healthz body: "ok\n" when healthy, else one
     *  "breach: ..." line per latched breach. */
    std::string healthzText() const;

  private:
    SloWatchdog() = default;

    /** Latch @p slo (once), log, count, and record the event. */
    void recordBreach(const char *slo, double value, double limit,
                      uint64_t frame);

    std::atomic<bool> enabled_{false};
    std::atomic<bool> healthy_{true};

    mutable std::mutex mutex_;
    SloThresholds thresholds_;
    std::vector<SloBreach> breaches_;
    /** Pool-stall bookkeeping, keyed by pool address. */
    struct PoolState
    {
        const void *pool = nullptr;
        uint64_t tasksExecuted = 0;
        uint64_t sinceNs = 0; ///< When this count was first seen.
    };
    std::vector<PoolState> poolStates_;
};

namespace detail {
/** Master gate for the per-frame live-telemetry hook. */
extern std::atomic<bool> g_live_telemetry;
} // namespace detail

/** @return whether frameTick() is armed (single relaxed load). */
inline bool
liveTelemetry()
{
    return detail::g_live_telemetry.load(std::memory_order_relaxed);
}

/** Arm / disarm the per-frame live-telemetry hook. */
void setLiveTelemetry(bool enabled);

/**
 * Per-frame live telemetry hook. Callers gate on liveTelemetry()
 * so disabled runs pay one relaxed load and no call.
 *
 * Records the `live.*` registry metrics (frame-time and ATE
 * histograms, frame/tracking-failure counters, last-value gauges),
 * appends Frame / TrackingFailure flight-recorder events, maintains
 * the consecutive-tracking-failure run length, and drives the SLO
 * watchdog (onFrame + checkPools).
 *
 * @param frame Frame index within the run.
 * @param wallSeconds Host wall time of the frame.
 * @param ateMeters Live per-frame ATE, meters (0 when no ground
 *        truth is available).
 * @param tracked Whether the pose was accepted by the gates.
 */
void frameTick(uint64_t frame, double wallSeconds, double ateMeters,
               bool tracked);

} // namespace slambench::support::telemetry

#endif // SLAMBENCH_SUPPORT_SLO_WATCHDOG_HPP
