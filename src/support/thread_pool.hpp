#ifndef SLAMBENCH_SUPPORT_THREAD_POOL_HPP
#define SLAMBENCH_SUPPORT_THREAD_POOL_HPP

/**
 * @file
 * Task-queue worker pool with blocking parallelFor on top.
 *
 * This is the substrate behind the `Threaded` kernel implementations
 * (mirroring SLAMBench's OpenMP builds without an OpenMP dependency)
 * and the parallel DSE drivers, which submit whole pipeline runs as
 * tasks. Unlike the original single-job broadcast design, the pool is
 * a task-queue executor: any number of threads may submit work
 * concurrently, and a task running on a worker may itself open a
 * nested parallel region — waiters execute queued tasks cooperatively
 * instead of blocking the thread (or panicking, as the old
 * implementation did).
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/trace.hpp"

namespace slambench::support {

/**
 * A fixed set of worker threads draining a shared FIFO task queue.
 *
 * Three usage layers, all safe to mix from any thread (including from
 * inside a task running on the pool itself):
 *
 *  - parallelFor / parallelForChunked: blocking data-parallel loops.
 *    The caller cooperatively executes queued chunks while waiting,
 *    so a 1-thread pool still makes forward progress and nested
 *    regions cannot deadlock.
 *  - submit + wait(TaskGroup): explicit fork/join. Each submitted
 *    task is tracked by a TaskGroup; wait() drains queue work until
 *    the group's tasks have all finished.
 *  - Concurrent submissions: independent threads may run their own
 *    parallelFor or task groups on the same pool simultaneously;
 *    tasks interleave in the single queue.
 */
class ThreadPool
{
  public:
    /**
     * Completion tracker for a set of submitted tasks. A group may be
     * reused for several submit/wait rounds; it must outlive every
     * task submitted against it.
     */
    class TaskGroup
    {
      public:
        TaskGroup() = default;
        TaskGroup(const TaskGroup &) = delete;
        TaskGroup &operator=(const TaskGroup &) = delete;

        /** @return number of submitted-but-unfinished tasks. */
        size_t
        pending() const
        {
            return pending_.load(std::memory_order_acquire);
        }

      private:
        friend class ThreadPool;
        std::atomic<size_t> pending_{0};
    };

    /**
     * @param num_threads Worker count; 0 selects hardware_concurrency().
     */
    explicit ThreadPool(size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains the queue, then joins the workers. */
    ~ThreadPool();

    /** @return number of worker threads (always >= 1). */
    size_t numThreads() const { return threads_.size(); }

    /**
     * Enqueue @p task for execution by the workers, tracked by
     * @p group. Thread-safe; callable from inside a running task.
     */
    void submit(TaskGroup &group, std::function<void()> task);

    /**
     * Block until every task submitted against @p group has finished.
     * While waiting, the calling thread cooperatively executes queued
     * tasks — @p group's own tasks first, then tasks of any other
     * group — so nested waits make forward progress on a saturated
     * pool instead of deadlocking. Note the latency implication: once
     * the group's own tasks are all taken, a waiter may still pick up
     * an unrelated long-running task (e.g. a whole DSE evaluation
     * submitted by another client of the shared pool) and only return
     * after it completes.
     */
    void wait(TaskGroup &group);

    /**
     * Run @p body(i) for every i in [begin, end), split into chunks
     * executed by the workers. Blocks until all iterations complete.
     * May be called concurrently from several threads and from inside
     * another parallelFor's body (nested regions run cooperatively).
     * On a shared pool the implied wait() can drain one unrelated
     * queued task after the loop's own chunks are exhausted (see
     * wait()), so wall time is not bounded by the loop body alone.
     *
     * @param begin First index.
     * @param end One past the last index.
     * @param body Callable invoked once per index; must be thread-safe.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &body);

    /**
     * Chunked variant: @p body(chunk_begin, chunk_end) is called once
     * per contiguous chunk, which lets the body keep per-chunk state.
     */
    void parallelForChunked(
        size_t begin, size_t end,
        const std::function<void(size_t, size_t)> &body);

    /** @return total tasks executed since construction (occupancy /
     *  test introspection; relaxed). */
    uint64_t
    tasksExecuted() const
    {
        return tasksExecuted_.load(std::memory_order_relaxed);
    }

    /** @return high-water mark of simultaneously running tasks. */
    size_t
    peakActiveTasks() const
    {
        return peakActive_.load(std::memory_order_relaxed);
    }

    /** @return tasks currently queued and not yet claimed by any
     *  runner (live saturation signal; relaxed). */
    size_t
    queueDepth() const
    {
        return queueDepth_.load(std::memory_order_relaxed);
    }

    /** @return a process-wide shared pool sized to the host. */
    static ThreadPool &global();

    /**
     * Invoke @p fn once for every live pool (the global pool plus any
     * explicitly constructed ones). The internal registry lock is
     * held across the calls, so @p fn must be quick and must not
     * construct or destroy pools. Used by the SLO watchdog to sample
     * queueDepth()/tasksExecuted() for stall detection.
     */
    static void
    forEachPool(const std::function<void(const ThreadPool &)> &fn);

  private:
    struct Task
    {
        std::function<void()> fn;
        TaskGroup *group = nullptr;
        /** Span name of the dispatching scope; chunks executed by
         *  workers are traced under it (null = no tracing). */
        const char *traceName = nullptr;
        /** Request context of the submitting thread, reinstated on
         *  the executing worker so request spans opened inside the
         *  task attach to the submitter's trace (inactive when
         *  request tracing is disarmed or no context was active). */
        trace::TraceContext requestContext;
        /** Enqueue time, for the pool.task.queue_wait_ms histogram
         *  (queue stall vs. execute time; see docs/OBSERVABILITY.md). */
        std::chrono::steady_clock::time_point enqueuedAt;
    };

    void workerLoop();
    /** Push one task; @p trace_name labels worker-side spans. */
    void enqueue(TaskGroup &group, std::function<void()> task,
                 const char *trace_name);
    /** Run one task (queue lock NOT held) and settle its group. */
    void execute(Task task);
    /** Pop-and-run one queued task, preferring tasks of @p prefer
     *  when non-null; @return false if queue empty. */
    bool tryRunOneTask(TaskGroup *prefer = nullptr);

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    /** Signals workers: queue non-empty or stopping. */
    std::condition_variable wake_;
    /** Signals waiters: some group finished or new work to steal. */
    std::condition_variable done_;
    std::deque<Task> queue_;
    bool stopping_ = false;

    std::atomic<uint64_t> tasksExecuted_{0};
    std::atomic<size_t> activeTasks_{0};
    std::atomic<size_t> peakActive_{0};
    std::atomic<size_t> queueDepth_{0};
};

} // namespace slambench::support

#endif // SLAMBENCH_SUPPORT_THREAD_POOL_HPP
