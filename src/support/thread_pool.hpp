#ifndef SLAMBENCH_SUPPORT_THREAD_POOL_HPP
#define SLAMBENCH_SUPPORT_THREAD_POOL_HPP

/**
 * @file
 * Fixed-size worker pool with a blocking parallelFor.
 *
 * This is the substrate behind the `Threaded` kernel implementations,
 * mirroring SLAMBench's OpenMP builds without an OpenMP dependency.
 */

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slambench::support {

/**
 * A fixed set of worker threads executing parallelFor range chunks.
 *
 * The pool is created idle; parallelFor blocks the caller until every
 * chunk has completed. Nested parallelFor calls are not supported.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 selects hardware_concurrency().
     */
    explicit ThreadPool(size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** @return number of worker threads (always >= 1). */
    size_t numThreads() const { return threads_.size(); }

    /**
     * Run @p body(i) for every i in [begin, end), split into chunks
     * executed by the workers. Blocks until all iterations complete.
     *
     * @param begin First index.
     * @param end One past the last index.
     * @param body Callable invoked once per index; must be thread-safe.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &body);

    /**
     * Chunked variant: @p body(chunk_begin, chunk_end) is called once
     * per contiguous chunk, which lets the body keep per-chunk state.
     */
    void parallelForChunked(
        size_t begin, size_t end,
        const std::function<void(size_t, size_t)> &body);

    /** @return a process-wide shared pool sized to the host. */
    static ThreadPool &global();

  private:
    struct Job
    {
        size_t begin = 0;
        size_t end = 0;
        size_t chunk = 1;
        const std::function<void(size_t, size_t)> *body = nullptr;
        size_t next = 0;
        size_t remainingChunks = 0;
        /** Span name of the dispatching scope; chunks executed by
         *  workers are traced under it (null = no tracing). */
        const char *traceName = nullptr;
    };

    void workerLoop();
    void runChunks(Job &job);

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Job job_;
    uint64_t generation_ = 0;
    bool jobActive_ = false;
    bool stopping_ = false;
};

} // namespace slambench::support

#endif // SLAMBENCH_SUPPORT_THREAD_POOL_HPP
