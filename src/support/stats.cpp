#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/logging.hpp"

namespace slambench::support {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank =
        clamped / 100.0 * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0)
        panic("Histogram: bins must be >= 1");
    if (!(hi > lo))
        panic("Histogram: hi must be > lo");
}

void
Histogram::add(double x)
{
    const double t = (x - lo_) / (hi_ - lo_);
    const long raw = static_cast<long>(
        std::floor(t * static_cast<double>(counts_.size())));
    const long last = static_cast<long>(counts_.size()) - 1;
    const long bin = std::clamp(raw, 0L, last);
    ++counts_[static_cast<size_t>(bin)];
    ++total_;
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

double
Histogram::binHi(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                     static_cast<double>(counts_.size());
}

std::string
Histogram::toAscii(size_t max_bar_width) const
{
    uint64_t peak = 1;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);

    std::ostringstream out;
    for (size_t i = 0; i < counts_.size(); ++i) {
        char label[64];
        std::snprintf(label, sizeof(label), "[%6.2f,%6.2f) ",
                      binLo(i), binHi(i));
        out << label;
        const size_t bar =
            static_cast<size_t>(counts_[i] * max_bar_width / peak);
        for (size_t j = 0; j < bar; ++j)
            out << '#';
        out << ' ' << counts_[i] << '\n';
    }
    return out.str();
}

} // namespace slambench::support
