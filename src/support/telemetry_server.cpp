#include "support/telemetry_server.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/flight_recorder.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/pmu.hpp"
#include "support/strings.hpp"

namespace slambench::support::telemetry {

namespace {

/** Format a double the way the exposition samples need (%.10g). */
std::string
sampleValue(double v)
{
    if (!(v > -std::numeric_limits<double>::infinity() &&
          v < std::numeric_limits<double>::infinity()))
        v = 0.0; // non-finite gauges render as 0, like the reports
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/** Emit the HELP/TYPE preamble for one metric family. */
void
writeFamilyHeader(std::ostream &os, const std::string &family,
                  const char *type, const std::string &registry_name)
{
    // HELP text escaping: backslash and newline (registry names
    // contain neither, but stay correct for any name).
    std::string help;
    for (const char c : registry_name) {
        if (c == '\\')
            help += "\\\\";
        else if (c == '\n')
            help += "\\n";
        else
            help += c;
    }
    os << "# HELP " << family << " slambench registry metric "
       << help << "\n";
    os << "# TYPE " << family << " " << type << "\n";
}

/** JSON-escape @p s into @p out (flight-recorder detail labels). */
void
appendJsonEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"')
            out += "\\\"";
        else if (c == '\\')
            out += "\\\\";
        else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

/**
 * Render the flight recorder's retained events as the /tracez JSON
 * document: the same seqlock snapshot path the crash dump uses, but
 * on demand and over HTTP while the run is still in flight.
 */
std::string
renderTracez()
{
    const auto &recorder = FlightRecorder::instance();
    const std::vector<Event> events = recorder.snapshot();
    std::string body = "{\n  \"schema\": \"slambench-tracez\",\n";
    body += "  \"enabled\": ";
    body += recorder.enabled() ? "true" : "false";
    body += ",\n  \"total_recorded\": ";
    body += std::to_string(recorder.totalRecorded());
    body += ",\n  \"events\": [";
    char buf[64];
    for (size_t i = 0; i < events.size(); ++i) {
        const Event &event = events[i];
        body += i ? ",\n    {" : "\n    {";
        body += "\"ns\": " + std::to_string(event.ns);
        body += ", \"kind\": \"";
        body += eventKindName(event.kind);
        body += "\", \"frame\": " + std::to_string(event.frame);
        std::snprintf(buf, sizeof(buf), ", \"a\": %.10g", event.a);
        body += buf;
        std::snprintf(buf, sizeof(buf), ", \"b\": %.10g", event.b);
        body += buf;
        body += ", \"detail\": \"";
        appendJsonEscaped(body, event.detail);
        body += "\"}";
    }
    body += events.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return body;
}

} // namespace

std::string
sanitizeMetricName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (const char c : name) {
        const bool valid = std::isalnum(static_cast<unsigned char>(c)) ||
                           c == '_' || c == ':';
        out += valid ? c : '_';
    }
    if (out.empty() ||
        std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
renderPrometheus(std::ostream &os)
{
    auto &registry = metrics::Registry::instance();
    // Scrape-time process gauge so a dashboard sees memory growth
    // without waiting for the end-of-run report.
    registry.gauge("process.peak_rss_bytes")
        .set(metrics::peakRssBytes());
    // Same idea for the hardware-counter gauges: fold the profiler's
    // current per-span totals in so a mid-run scrape sees live IPC /
    // miss rates (no-op when --pmu never armed profiling).
    pmu::publishGauges();

    for (const auto &[name, value] : registry.counters()) {
        std::string family = sanitizeMetricName(name);
        // Prometheus counter convention; registry names that already
        // end in _total keep it un-doubled.
        const std::string suffix = "_total";
        if (family.size() < suffix.size() ||
            family.compare(family.size() - suffix.size(),
                           suffix.size(), suffix) != 0)
            family += suffix;
        writeFamilyHeader(os, family, "counter", name);
        os << family << " " << value << "\n";
    }

    for (const auto &[name, value] : registry.gauges()) {
        const std::string family = sanitizeMetricName(name);
        writeFamilyHeader(os, family, "gauge", name);
        os << family << " " << sampleValue(value) << "\n";
    }

    for (const auto &[name, histogram] : registry.histograms()) {
        const std::string family = sanitizeMetricName(name);
        writeFamilyHeader(os, family, "histogram", name);
        // Cumulative buckets at the histogram's populated edges
        // (empty buckets elided — any subset of edges is valid
        // exposition as long as counts are cumulative and +Inf
        // equals _count).
        uint64_t cumulative = 0;
        const size_t buckets = histogram->numBuckets();
        for (size_t i = 0; i + 1 < buckets; ++i) {
            const uint64_t in_bucket = histogram->bucketCount(i);
            if (in_bucket == 0)
                continue;
            cumulative += in_bucket;
            os << family << "_bucket{le=\""
               << sampleValue(histogram->bucketHi(i)) << "\"} "
               << cumulative << "\n";
        }
        os << family << "_bucket{le=\"+Inf\"} "
           << histogram->count() << "\n";
        os << family << "_sum " << sampleValue(histogram->sum())
           << "\n";
        os << family << "_count " << histogram->count() << "\n";
    }
}

TelemetryServer::~TelemetryServer() { stop(); }

bool
TelemetryServer::start(int port)
{
    if (running())
        return false;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    const int enable = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        ::close(fd);
        return false;
    }

    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &addr_len) != 0) {
        ::close(fd);
        return false;
    }
    listenFd_ = fd;
    port_ = static_cast<int>(ntohs(addr.sin_port));
    stopRequested_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
TelemetryServer::stop()
{
    if (!thread_.joinable())
        return;
    stopRequested_.store(true, std::memory_order_relaxed);
    thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
    port_ = -1;
}

void
TelemetryServer::serveLoop()
{
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        // Bounded poll instead of a blocking accept so stop() is
        // honored within one timeout even with no clients.
        pollfd pfd;
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue;
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        handleConnection(client);
        ::close(client);
    }
}

void
TelemetryServer::handleConnection(int client_fd)
{
    char request[4096];
    const ssize_t got =
        ::read(client_fd, request, sizeof(request) - 1);
    if (got <= 0)
        return;
    request[got] = '\0';

    // "<METHOD> <path> ..." — the only request-line parts we need.
    std::string method;
    std::string path;
    {
        const char *p = request;
        while (*p && *p != ' ')
            method += *p++;
        while (*p == ' ')
            ++p;
        while (*p && *p != ' ' && *p != '\r' && *p != '\n')
            path += *p++;
    }

    int status = 200;
    const char *status_text = "OK";
    const char *content_type = "text/plain; charset=utf-8";
    std::string body;

    if (method != "GET") {
        status = 405;
        status_text = "Method Not Allowed";
        body = "only GET is supported\n";
    } else if (path == "/metrics") {
        std::ostringstream out;
        renderPrometheus(out);
        body = out.str();
        content_type = "text/plain; version=0.0.4; charset=utf-8";
    } else if (path == "/healthz") {
        const auto &watchdog = SloWatchdog::instance();
        body = watchdog.healthzText();
        if (!watchdog.healthy()) {
            status = 503;
            status_text = "Service Unavailable";
        }
    } else if (path == "/runz") {
        std::ostringstream out;
        if (metrics::RunSession::writeCurrentJson(out)) {
            body = out.str();
            content_type = "application/json";
        } else {
            status = 404;
            status_text = "Not Found";
            body = "no active run session\n";
        }
    } else if (path == "/tracez") {
        body = renderTracez();
        content_type = "application/json";
    } else {
        status = 404;
        status_text = "Not Found";
        body = "unknown path; try /metrics, /healthz, /runz, "
               "/tracez\n";
    }

    std::ostringstream response;
    response << "HTTP/1.0 " << status << " " << status_text
             << "\r\nContent-Type: " << content_type
             << "\r\nContent-Length: " << body.size()
             << "\r\nConnection: close\r\n\r\n"
             << body;
    const std::string out = response.str();
    size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::write(client_fd, out.data() + off, out.size() - off);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
}

TelemetryEndpoint::TelemetryEndpoint(const TelemetryOptions &options)
{
    if (!options.any())
        return;
    active_ = true;

    SloWatchdog::instance().configure(options.slo);
    const std::string dump_path =
        options.crashDumpPath.empty()
            ? options.generator + "_crash.json"
            : options.crashDumpPath;
    installCrashDump(dump_path, options.generator);
    setLiveTelemetry(true);

    if (options.port >= 0) {
        if (!server_.start(options.port))
            fatal(format("telemetry: cannot bind 127.0.0.1:%d",
                         options.port));
        logInfo() << "telemetry: listening on http://127.0.0.1:"
                  << server_.port();
        logInfo() << "telemetry: crash dump armed at " << dump_path;
    }
}

TelemetryEndpoint::~TelemetryEndpoint()
{
    if (!active_)
        return;
    server_.stop();
    setLiveTelemetry(false);
    SloWatchdog::instance().reset();
}

} // namespace slambench::support::telemetry
