#include "support/telemetry_server.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/flight_recorder.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/pmu.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace slambench::support::telemetry {

namespace {

/** Format a double the way the exposition samples need (%.10g). */
std::string
sampleValue(double v)
{
    if (!(v > -std::numeric_limits<double>::infinity() &&
          v < std::numeric_limits<double>::infinity()))
        v = 0.0; // non-finite gauges render as 0, like the reports
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/**
 * Split a registry name of the labeledMetricName() form into its
 * family part and its label block ("" when unlabeled). The label
 * block is returned without the surrounding braces.
 */
void
splitLabeledName(const std::string &name, std::string &base,
                 std::string &labels)
{
    const size_t brace = name.find('{');
    if (brace == std::string::npos) {
        base = name;
        labels.clear();
        return;
    }
    base = name.substr(0, brace);
    labels = name.substr(brace + 1);
    if (!labels.empty() && labels.back() == '}')
        labels.pop_back();
}

/** Emit the HELP/TYPE preamble for one metric family. */
void
writeFamilyHeader(std::ostream &os, const std::string &family,
                  const char *type, const std::string &registry_name)
{
    // HELP text escaping: backslash and newline (registry names
    // contain neither, but stay correct for any name).
    std::string help;
    for (const char c : registry_name) {
        if (c == '\\')
            help += "\\\\";
        else if (c == '\n')
            help += "\\n";
        else
            help += c;
    }
    os << "# HELP " << family << " slambench registry metric "
       << help << "\n";
    os << "# TYPE " << family << " " << type << "\n";
}

/** JSON-escape @p s into @p out (flight-recorder detail labels). */
void
appendJsonEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"')
            out += "\\\"";
        else if (c == '\\')
            out += "\\\\";
        else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

/** One key=value pair of a request's query string. */
struct QueryParam
{
    std::string key;
    std::string value;
};

/**
 * Parse "a=1&b=2" into pairs. No percent-decoding: every value the
 * /tracez API accepts (hex trace ids, tenant ids, numbers) is
 * already in the URL-safe alphabet.
 */
std::vector<QueryParam>
parseQuery(const std::string &query)
{
    std::vector<QueryParam> params;
    size_t pos = 0;
    while (pos < query.size()) {
        size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        const std::string part = query.substr(pos, amp - pos);
        const size_t eq = part.find('=');
        if (eq != std::string::npos)
            params.push_back(
                {part.substr(0, eq), part.substr(eq + 1)});
        else if (!part.empty())
            params.push_back({part, ""});
        pos = amp + 1;
    }
    return params;
}

/** @return the value of @p key in @p params, or @p fallback. */
std::string
queryValue(const std::vector<QueryParam> &params,
           const char *key, const char *fallback = "")
{
    for (const QueryParam &param : params)
        if (param.key == key)
            return param.value;
    return fallback;
}

/** Append one request span (and its subtree) as JSON to @p out. */
void
appendSpanTree(
    std::string &out, const trace::RetainedTrace &trace,
    const std::vector<const trace::RequestSpan *> &spans,
    size_t index, const std::string &indent)
{
    const trace::RequestSpan &span = *spans[index];
    char buf[64];
    out += indent + "{\"span_id\": \"" +
           trace::formatTraceId(span.spanId) + "\",";
    out += " \"name\": \"";
    appendJsonEscaped(out, span.name ? span.name : "");
    out += "\", \"category\": \"";
    out += trace::categoryName(span.cat);
    out += "\",";
    std::snprintf(buf, sizeof(buf), " \"offset_ms\": %.6f,",
                  static_cast<double>(span.startNs -
                                      trace.startNs) * 1e-6);
    out += buf;
    std::snprintf(buf, sizeof(buf), " \"duration_ms\": %.6f",
                  static_cast<double>(span.endNs - span.startNs) *
                      1e-6);
    out += buf;

    // Children: spans naming this one as parent, start-ordered.
    std::vector<size_t> children;
    for (size_t i = 0; i < spans.size(); ++i)
        if (i != index &&
            spans[i]->parentSpanId == span.spanId)
            children.push_back(i);
    std::sort(children.begin(), children.end(),
              [&spans](size_t a, size_t b) {
                  return spans[a]->startNs < spans[b]->startNs;
              });
    if (children.empty()) {
        out += "}";
        return;
    }
    out += ", \"children\": [\n";
    const std::string child_indent = indent + "  ";
    for (size_t i = 0; i < children.size(); ++i) {
        appendSpanTree(out, trace, spans, children[i],
                       child_indent);
        if (i + 1 < children.size())
            out += ",";
        out += "\n";
    }
    out += indent + "]}";
}

/** Append one retained trace (summary + full span tree) as JSON. */
void
appendTraceJson(std::string &out,
                const trace::RetainedTrace &trace,
                const std::string &indent)
{
    char buf[64];
    out += indent + "{\"trace_id\": \"" +
           trace::formatTraceId(trace.traceId) + "\",\n";
    out += indent + " \"tenant\": \"";
    appendJsonEscaped(out, trace.tenant.c_str());
    out += "\", \"frame\": " + std::to_string(trace.frame) + ",\n";
    std::snprintf(buf, sizeof(buf), " \"duration_ms\": %.6f,",
                  trace.durationSeconds * 1e3);
    out += indent + buf;
    std::snprintf(
        buf, sizeof(buf), " \"total_ms\": %.6f,",
        static_cast<double>(trace.endNs - trace.startNs) * 1e-6);
    out += buf;
    out += " \"start_ns\": " + std::to_string(trace.startNs) + ",\n";
    out += indent + " \"retained\": {\"slo_breach\": ";
    out += trace.retention.sloBreach ? "true" : "false";
    out += ", \"tracking_lost\": ";
    out += trace.retention.trackingLost ? "true" : "false";
    out += ", \"top_bucket\": ";
    out += trace.retention.topBucket ? "true" : "false";
    out += ", \"sampled\": ";
    out += trace.retention.sampled ? "true" : "false";
    out += "},\n";
    out += indent + " \"spans_dropped\": " +
           std::to_string(trace.spansDropped) + ",\n";

    // Render the tree from the root span; spans whose parent was
    // dropped (span cap) or never closed re-anchor at the root so
    // nothing recorded is invisible.
    std::vector<trace::RequestSpan> spans = trace.spans;
    size_t root_index = spans.size();
    for (size_t i = 0; i < spans.size(); ++i)
        if (spans[i].spanId == trace.rootSpanId)
            root_index = i;
    if (root_index == spans.size()) {
        out += indent + " \"spans\": []}";
        return;
    }
    for (trace::RequestSpan &span : spans) {
        if (span.spanId == trace.rootSpanId)
            continue;
        bool parent_known = false;
        for (const trace::RequestSpan &other : spans)
            if (other.spanId == span.parentSpanId)
                parent_known = true;
        if (!parent_known)
            span.parentSpanId = trace.rootSpanId;
    }
    std::vector<const trace::RequestSpan *> span_ptrs;
    span_ptrs.reserve(spans.size());
    for (const trace::RequestSpan &span : spans)
        span_ptrs.push_back(&span);
    out += indent + " \"spans\": [\n";
    appendSpanTree(out, trace, span_ptrs, root_index,
                   indent + "  ");
    out += "\n" + indent + "]}";
}

/**
 * Render the /tracez?... query response: retained request traces
 * filtered by trace_id / tenant / min_ms, newest first, capped at
 * limit, each with its complete span tree.
 */
std::string
renderTracezQuery(const std::vector<QueryParam> &params,
                  int *status)
{
    auto &tracer = trace::RequestTracer::instance();
    const std::string id_text = queryValue(params, "trace_id");
    const std::string tenant = queryValue(params, "tenant");
    const std::string min_ms_text = queryValue(params, "min_ms");
    const double min_ms =
        min_ms_text.empty() ? 0.0 : std::atof(min_ms_text.c_str());
    const std::string limit_text = queryValue(params, "limit");
    size_t limit = 32;
    if (!limit_text.empty()) {
        const long parsed = std::atol(limit_text.c_str());
        limit = parsed <= 0 ? 1 : static_cast<size_t>(parsed);
    }

    std::vector<trace::RetainedTrace> matches;
    if (!id_text.empty()) {
        const uint64_t trace_id = trace::parseTraceId(id_text);
        trace::RetainedTrace found;
        if (trace_id != 0 && tracer.findTrace(trace_id, &found))
            matches.push_back(std::move(found));
        if (matches.empty())
            *status = 404;
    } else {
        for (auto &candidate : tracer.retainedSnapshot()) {
            if (matches.size() >= limit)
                break;
            if (!tenant.empty() && candidate.tenant != tenant)
                continue;
            if (candidate.durationSeconds * 1e3 < min_ms)
                continue;
            matches.push_back(std::move(candidate));
        }
    }

    std::string body =
        "{\n  \"schema\": \"slambench-tracez-query\",\n";
    body += "  \"matches\": " + std::to_string(matches.size()) +
            ",\n";
    body += "  \"traces\": [";
    for (size_t i = 0; i < matches.size(); ++i) {
        body += i ? ",\n" : "\n";
        appendTraceJson(body, matches[i], "    ");
    }
    body += matches.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return body;
}

/**
 * Render the flight recorder's retained events as the /tracez JSON
 * document: the same seqlock snapshot path the crash dump uses, but
 * on demand and over HTTP while the run is still in flight. The
 * document also carries the request tracer's state and a summary
 * index of its retained traces (query with ?trace_id= / ?tenant= /
 * ?min_ms= / ?limit= for complete span trees).
 */
std::string
renderTracez()
{
    const auto &recorder = FlightRecorder::instance();
    const std::vector<Event> events = recorder.snapshot();
    std::string body = "{\n  \"schema\": \"slambench-tracez\",\n";
    body += "  \"enabled\": ";
    body += recorder.enabled() ? "true" : "false";
    body += ",\n  \"total_recorded\": ";
    body += std::to_string(recorder.totalRecorded());
    body += ",\n  \"events\": [";
    char buf[64];
    for (size_t i = 0; i < events.size(); ++i) {
        const Event &event = events[i];
        body += i ? ",\n    {" : "\n    {";
        body += "\"ns\": " + std::to_string(event.ns);
        body += ", \"kind\": \"";
        body += eventKindName(event.kind);
        body += "\", \"frame\": " + std::to_string(event.frame);
        std::snprintf(buf, sizeof(buf), ", \"a\": %.10g", event.a);
        body += buf;
        std::snprintf(buf, sizeof(buf), ", \"b\": %.10g", event.b);
        body += buf;
        body += ", \"detail\": \"";
        appendJsonEscaped(body, event.detail);
        body += "\"}";
    }
    body += events.empty() ? "]" : "\n  ]";

    // Request-tracer state plus a summary index of retained traces
    // (newest first); fetch a complete span tree via ?trace_id=.
    auto &tracer = trace::RequestTracer::instance();
    const auto options = tracer.options();
    body += ",\n  \"request_tracing\": {\"armed\": ";
    body += tracer.enabled() ? "true" : "false";
    std::snprintf(buf, sizeof(buf), ", \"sample_rate\": %.10g",
                  options.sampleRate);
    body += buf;
    body += ", \"started\": " + std::to_string(tracer.tracesStarted());
    body += ", \"retained\": " +
            std::to_string(tracer.tracesRetained());
    body += "},\n  \"traces\": [";
    const auto retained = tracer.retainedSnapshot();
    for (size_t i = 0; i < retained.size(); ++i) {
        const trace::RetainedTrace &t = retained[i];
        body += i ? ",\n    {" : "\n    {";
        body += "\"trace_id\": \"" +
                trace::formatTraceId(t.traceId) + "\"";
        body += ", \"tenant\": \"";
        appendJsonEscaped(body, t.tenant.c_str());
        body += "\", \"frame\": " + std::to_string(t.frame);
        std::snprintf(buf, sizeof(buf), ", \"duration_ms\": %.6f",
                      t.durationSeconds * 1e3);
        body += buf;
        body += ", \"slo_breach\": ";
        body += t.retention.sloBreach ? "true" : "false";
        body += ", \"tracking_lost\": ";
        body += t.retention.trackingLost ? "true" : "false";
        body += ", \"top_bucket\": ";
        body += t.retention.topBucket ? "true" : "false";
        body += ", \"sampled\": ";
        body += t.retention.sampled ? "true" : "false";
        body += ", \"spans\": " + std::to_string(t.spans.size());
        body += "}";
    }
    body += retained.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return body;
}

} // namespace

std::string
sanitizeMetricName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (const char c : name) {
        const bool valid = std::isalnum(static_cast<unsigned char>(c)) ||
                           c == '_' || c == ':';
        out += valid ? c : '_';
    }
    if (out.empty() ||
        std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
labeledMetricName(const std::string &family, const std::string &key,
                  const std::string &value)
{
    return family + "{" + key + "=\"" + escapeLabelValue(value) +
           "\"}";
}

void
renderPrometheus(std::ostream &os)
{
    auto &registry = metrics::Registry::instance();
    // Scrape-time process gauge so a dashboard sees memory growth
    // without waiting for the end-of-run report.
    registry.gauge("process.peak_rss_bytes")
        .set(metrics::peakRssBytes());
    // Same idea for the hardware-counter gauges: fold the profiler's
    // current per-span totals in so a mid-run scrape sees live IPC /
    // miss rates (no-op when --pmu never armed profiling).
    pmu::publishGauges();

    // Labeled registry names (labeledMetricName()'s `base{...}` form)
    // share one family: the name-sorted snapshots keep every
    // `base{...}` entry contiguous, so emitting the HELP/TYPE header
    // only when the family changes yields one header per family
    // followed by all of its (labeled) samples.
    std::string base;
    std::string labels;
    std::string last_family;

    for (const auto &[name, value] : registry.counters()) {
        splitLabeledName(name, base, labels);
        std::string family = sanitizeMetricName(base);
        // Prometheus counter convention; registry names that already
        // end in _total keep it un-doubled.
        const std::string suffix = "_total";
        if (family.size() < suffix.size() ||
            family.compare(family.size() - suffix.size(),
                           suffix.size(), suffix) != 0)
            family += suffix;
        if (family != last_family) {
            writeFamilyHeader(os, family, "counter", base);
            last_family = family;
        }
        os << family;
        if (!labels.empty())
            os << "{" << labels << "}";
        os << " " << value << "\n";
    }

    last_family.clear();
    for (const auto &[name, value] : registry.gauges()) {
        splitLabeledName(name, base, labels);
        const std::string family = sanitizeMetricName(base);
        if (family != last_family) {
            writeFamilyHeader(os, family, "gauge", base);
            last_family = family;
        }
        os << family;
        if (!labels.empty())
            os << "{" << labels << "}";
        os << " " << sampleValue(value) << "\n";
    }

    last_family.clear();
    for (const auto &[name, histogram] : registry.histograms()) {
        splitLabeledName(name, base, labels);
        const std::string family = sanitizeMetricName(base);
        if (family != last_family) {
            writeFamilyHeader(os, family, "histogram", base);
            last_family = family;
        }
        // A labeled histogram's le label goes after the series
        // labels: `base_bucket{tenant="t03",le="0.1"}`.
        const std::string label_prefix =
            labels.empty() ? "" : labels + ",";
        // OpenMetrics-style exemplar: the retained request trace
        // behind this histogram's samples, attached to the first
        // bucket whose upper edge covers the exemplar value (+Inf as
        // the fallback) as ` # {trace_id="..."} <value>` so a
        // dashboard can jump from a latency bucket straight to
        // `/tracez?trace_id=...`.
        trace::TraceExemplar exemplar;
        bool exemplar_pending =
            trace::RequestTracer::instance().exemplarFor(name,
                                                         &exemplar);
        const std::string exemplar_suffix =
            exemplar_pending
                ? " # {trace_id=\"" +
                      trace::formatTraceId(exemplar.traceId) +
                      "\"} " + sampleValue(exemplar.value)
                : std::string();
        // Cumulative buckets at the histogram's populated edges
        // (empty buckets elided — any subset of edges is valid
        // exposition as long as counts are cumulative and +Inf
        // equals _count).
        uint64_t cumulative = 0;
        const size_t buckets = histogram->numBuckets();
        for (size_t i = 0; i + 1 < buckets; ++i) {
            const uint64_t in_bucket = histogram->bucketCount(i);
            if (in_bucket == 0)
                continue;
            cumulative += in_bucket;
            os << family << "_bucket{" << label_prefix << "le=\""
               << sampleValue(histogram->bucketHi(i)) << "\"} "
               << cumulative;
            if (exemplar_pending &&
                histogram->bucketHi(i) >= exemplar.value) {
                os << exemplar_suffix;
                exemplar_pending = false;
            }
            os << "\n";
        }
        os << family << "_bucket{" << label_prefix << "le=\"+Inf\"} "
           << histogram->count();
        if (exemplar_pending)
            os << exemplar_suffix;
        os << "\n";
        os << family << "_sum";
        if (!labels.empty())
            os << "{" << labels << "}";
        os << " " << sampleValue(histogram->sum()) << "\n";
        os << family << "_count";
        if (!labels.empty())
            os << "{" << labels << "}";
        os << " " << histogram->count() << "\n";
    }
}

TelemetryServer::~TelemetryServer() { stop(); }

bool
TelemetryServer::start(int port)
{
    if (running())
        return false;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    const int enable = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        ::close(fd);
        return false;
    }

    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &addr_len) != 0) {
        ::close(fd);
        return false;
    }
    listenFd_ = fd;
    port_ = static_cast<int>(ntohs(addr.sin_port));
    stopRequested_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
TelemetryServer::stop()
{
    if (!thread_.joinable())
        return;
    stopRequested_.store(true, std::memory_order_relaxed);
    thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
    port_ = -1;
}

void
TelemetryServer::serveLoop()
{
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        // Bounded poll instead of a blocking accept so stop() is
        // honored within one timeout even with no clients. EINTR is
        // not an error: a signal (profiling timers, the crash-dump
        // handler probing, SIGCHLD in embedding processes) just
        // restarts the wait.
        pollfd pfd;
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0 && errno != EINTR)
            return; // listen fd is gone; stop() will join us
        if (ready <= 0)
            continue;
        int client;
        do {
            client = ::accept(listenFd_, nullptr, nullptr);
        } while (client < 0 && errno == EINTR);
        if (client < 0)
            continue;
        serveConnection(client);
        ::close(client);
    }
}

namespace detail {

bool
sendAll(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        // MSG_NOSIGNAL: a client that disconnected mid-response
        // yields EPIPE here instead of a process-fatal SIGPIPE —
        // mandatory for the long-running serve binary, where scrapers
        // come and go for the lifetime of the process.
        const ssize_t n =
            ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // EPIPE/ECONNRESET/...: client is gone
        }
        if (n == 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
readRequestLine(int fd, std::string &request, size_t max_len,
                int deadline_ms)
{
    // A slow or segmented client may deliver "GET /met" and
    // "rics HTTP/1.0\r\n" in separate packets; accumulate until the
    // request line is complete. The deadline bounds a stalled client
    // so it cannot wedge the accept loop, and the buffer cap bounds
    // a malicious one.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    while (request.find("\r\n") == std::string::npos) {
        if (request.size() >= max_len)
            return false;
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline)
            return false;
        const int wait_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count() +
            1);
        pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ready = ::poll(&pfd, 1, wait_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (ready == 0)
            return false; // deadline expired
        char buf[1024];
        const size_t want =
            std::min(sizeof(buf), max_len - request.size());
        const ssize_t got = ::read(fd, buf, want);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0)
            return false; // EOF before the line completed
        request.append(buf, static_cast<size_t>(got));
    }
    return true;
}

} // namespace detail

void
serveConnection(int client_fd, int read_deadline_ms)
{
    std::string request;
    const bool complete = detail::readRequestLine(
        client_fd, request, 4096, read_deadline_ms);
    if (!complete && request.empty())
        return; // nothing arrived: no response owed

    // "<METHOD> <path> ..." — the only request-line parts we need.
    std::string method;
    std::string path;
    {
        const char *p = request.c_str();
        while (*p && *p != ' ')
            method += *p++;
        while (*p == ' ')
            ++p;
        while (*p && *p != ' ' && *p != '\r' && *p != '\n')
            path += *p++;
    }
    // Split off the query string; only /tracez interprets one.
    std::string query;
    {
        const size_t qpos = path.find('?');
        if (qpos != std::string::npos) {
            query = path.substr(qpos + 1);
            path.resize(qpos);
        }
    }

    int status = 200;
    const char *status_text = "OK";
    const char *content_type = "text/plain; charset=utf-8";
    std::string body;

    if (!complete) {
        // Partial line (oversize or timed out mid-request): answer
        // rather than silently dropping, then let close() end it.
        status = 400;
        status_text = "Bad Request";
        body = "incomplete request line\n";
    } else if (method != "GET") {
        status = 405;
        status_text = "Method Not Allowed";
        body = "only GET is supported\n";
    } else if (path == "/metrics") {
        std::ostringstream out;
        renderPrometheus(out);
        body = out.str();
        content_type = "text/plain; version=0.0.4; charset=utf-8";
    } else if (path == "/healthz") {
        const auto &watchdog = SloWatchdog::instance();
        body = watchdog.healthzText();
        if (!watchdog.healthy()) {
            status = 503;
            status_text = "Service Unavailable";
        }
    } else if (path == "/runz") {
        std::ostringstream out;
        if (metrics::RunSession::writeCurrentJson(out)) {
            body = out.str();
            content_type = "application/json";
        } else {
            status = 404;
            status_text = "Not Found";
            body = "no active run session\n";
        }
    } else if (path == "/tracez") {
        if (query.empty()) {
            body = renderTracez();
        } else {
            body = renderTracezQuery(parseQuery(query), &status);
            if (status == 404)
                status_text = "Not Found";
        }
        content_type = "application/json";
    } else {
        status = 404;
        status_text = "Not Found";
        body = "unknown path; try /metrics, /healthz, /runz, "
               "/tracez\n";
    }

    std::ostringstream response;
    response << "HTTP/1.0 " << status << " " << status_text
             << "\r\nContent-Type: " << content_type
             << "\r\nContent-Length: " << body.size()
             << "\r\nConnection: close\r\n\r\n"
             << body;
    const std::string out = response.str();
    detail::sendAll(client_fd, out.data(), out.size());
}

TelemetryEndpoint::TelemetryEndpoint(const TelemetryOptions &options)
{
    if (!options.any())
        return;
    active_ = true;

    // Size the flight-recorder ring before anything records into it
    // (setCapacity drops retained events and is not safe against
    // concurrent writers).
    if (options.recorderSlots != 0 &&
        options.recorderSlots !=
            FlightRecorder::instance().capacity())
        FlightRecorder::instance().setCapacity(
            options.recorderSlots);
    SloWatchdog::instance().configure(options.slo);
    const std::string dump_path =
        options.crashDumpPath.empty()
            ? options.generator + "_crash.json"
            : options.crashDumpPath;
    installCrashDump(dump_path, options.generator);
    setLiveTelemetry(true);

    if (options.port >= 0) {
        if (!server_.start(options.port))
            fatal(format("telemetry: cannot bind 127.0.0.1:%d",
                         options.port));
        logInfo() << "telemetry: listening on http://127.0.0.1:"
                  << server_.port();
        logInfo() << "telemetry: crash dump armed at " << dump_path;
    }
}

TelemetryEndpoint::~TelemetryEndpoint()
{
    if (!active_)
        return;
    server_.stop();
    setLiveTelemetry(false);
    SloWatchdog::instance().reset();
}

} // namespace slambench::support::telemetry
