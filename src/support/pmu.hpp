#ifndef SLAMBENCH_SUPPORT_PMU_HPP
#define SLAMBENCH_SUPPORT_PMU_HPP

/**
 * @file
 * Hardware performance-counter profiling: per-span cycles, IPC, and
 * cache/branch miss attribution on top of `perf_event_open`.
 *
 * Wall-clock tracing (`support/trace.hpp`) answers *where* a frame's
 * time went; this layer answers *why* a kernel is slow — low IPC
 * (port pressure, dependency chains), LLC misses (bandwidth bound),
 * or branch mispredicts — by sampling a grouped counter set at every
 * Category::Kernel / Category::Worker span boundary and aggregating
 * exclusive (self-time) totals per span name across all threads,
 * thread-pool worker chunks included. The derived per-kernel metrics
 * (IPC, LLC miss rate, branch miss rate, measured bytes/s) land in
 * the run report's `pmu` block, in `pmu.*` registry gauges, and in
 * per-backend `pmu` blocks of `BENCH_kernels.json` (see
 * docs/OBSERVABILITY.md "Hardware counters").
 *
 * Graceful degradation is part of the contract: the backend is
 * probed once per arm (per-counter — a VM that vetoes hardware PMU
 * events can still deliver software task-clock), a single WARN is
 * logged when anything is missing, and a null backend keeps every
 * report schema-stable. When `--pmu` is absent the entire layer
 * costs one relaxed atomic load per span.
 */

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace slambench::support::pmu {

/** The grouped counter set sampled at span boundaries. */
enum class CounterId : size_t {
    Cycles = 0,   ///< PERF_COUNT_HW_CPU_CYCLES.
    Instructions, ///< PERF_COUNT_HW_INSTRUCTIONS.
    LlcLoads,     ///< LLC read accesses (cache event).
    LlcMisses,    ///< LLC read misses (cache event).
    Branches,     ///< PERF_COUNT_HW_BRANCH_INSTRUCTIONS.
    BranchMisses, ///< PERF_COUNT_HW_BRANCH_MISSES.
    TaskClockNs,  ///< PERF_COUNT_SW_TASK_CLOCK (software; ns).
    Count,
};

/** Number of counters in the set. */
constexpr size_t kNumCounters = static_cast<size_t>(CounterId::Count);

/** @return the stable snake_case name of @p id ("cycles", ...). */
const char *counterName(CounterId id);

/** @return the bit marking @p id valid in Sample::validMask. */
constexpr uint32_t
counterBit(CounterId id)
{
    return 1u << static_cast<uint32_t>(id);
}

/**
 * One multi-counter reading. Values accumulate monotonically per
 * thread (deltas between two samples measure an interval); a counter
 * whose bit is clear in validMask could not be opened or read and
 * its value slot is meaningless.
 */
struct Sample
{
    std::array<double, kNumCounters> value{};
    uint32_t validMask = 0;

    /** @return whether counter @p id carries a meaningful value. */
    bool
    valid(CounterId id) const
    {
        return (validMask & counterBit(id)) != 0;
    }

    /** @return the value of counter @p id (0 when invalid). */
    double
    get(CounterId id) const
    {
        return valid(id) ? value[static_cast<size_t>(id)] : 0.0;
    }

    /** Set counter @p id and mark it valid. */
    void
    set(CounterId id, double v)
    {
        value[static_cast<size_t>(id)] = v;
        validMask |= counterBit(id);
    }
};

/**
 * @return @p end - @p begin per counter; the result is valid only
 * where both inputs are (the mask intersection), so a counter that
 * appeared or vanished mid-interval drops out instead of producing
 * a garbage delta.
 */
Sample sampleDelta(const Sample &end, const Sample &begin);

/** Accumulate @p other into @p into (union of valid masks). */
void sampleAccumulate(Sample &into, const Sample &other);

/**
 * @return @p total minus @p children where both are valid, clamped
 * at 0 (child spans measured on the same thread can slightly exceed
 * the parent's delta through read jitter).
 */
Sample sampleExclusive(const Sample &total, const Sample &children);

/**
 * Scale one group-read value for counter multiplexing: when the
 * kernel time-shares hardware counters, each event reports the time
 * it was enabled vs. actually running, and the unbiased estimate is
 * raw * enabled / running. @return 0 when @p running is 0 (the
 * counter never got the hardware).
 */
double scaledCounterValue(uint64_t raw, uint64_t time_enabled,
                          uint64_t time_running);

/** Derived per-span metrics computed from aggregated totals. */
struct DerivedMetrics
{
    double ipc = 0.0;            ///< instructions / cycles.
    bool hasIpc = false;
    double llcMissRate = 0.0;    ///< llc_misses / llc_loads.
    bool hasLlcMissRate = false;
    double branchMissRate = 0.0; ///< branch_misses / branches.
    bool hasBranchMissRate = false;
    double taskClockSeconds = 0.0;
    bool hasTaskClock = false;
    double bytesPerSecond = 0.0; ///< bytes / task-clock seconds.
    bool hasBytesPerSecond = false;
};

/**
 * @return the derived metrics for @p totals with @p bytes of known
 * memory traffic (0 = unknown; suppresses bytes/s). Pure function,
 * unit-tested against hand-computed values.
 */
DerivedMetrics deriveMetrics(const Sample &totals, double bytes);

/**
 * Per-thread opened counter group. read() fills a monotonically
 * accumulating Sample; implementations must be cheap enough to call
 * twice per span.
 */
class ThreadCounters
{
  public:
    virtual ~ThreadCounters() = default;

    /**
     * Read the group now. @return false when nothing could be read
     * (@p out is reset to an all-invalid sample).
     */
    virtual bool read(Sample &out) = 0;
};

/**
 * A source of per-thread counter groups. The perf backend wraps
 * `perf_event_open`; tests inject fakes; the null backend opens
 * nothing and keeps reports schema-stable.
 */
class CounterBackend
{
  public:
    virtual ~CounterBackend() = default;

    /** @return stable backend name ("perf", "null", ...). */
    virtual const char *name() const = 0;

    /** @return bitmask of counters this backend can deliver. */
    virtual uint32_t availableMask() const = 0;

    /**
     * Open this thread's counter group. May return nullptr when the
     * thread-level open fails; callers treat that as all-invalid.
     */
    virtual std::unique_ptr<ThreadCounters> openThreadCounters() = 0;
};

/** @return the schema-stable no-counter backend. */
CounterBackend &nullBackend();

/**
 * Probe `perf_event_open` per counter and return the best backend
 * for this host: the perf backend when at least one counter opens,
 * else the null backend. Logs at most ONE WARN describing what is
 * missing (perf entirely, or the hardware subset). The
 * SLAMBENCH_PMU_DISABLE environment variable forces the null
 * backend (containers, deterministic tests).
 */
CounterBackend &detectBackend();

/** Aggregated exclusive totals for one span name. */
struct SpanStats
{
    std::string name;     ///< Span (kernel) name.
    uint64_t spans = 0;   ///< Completed spans aggregated.
    Sample totals;        ///< Exclusive (self-time) counter sums.
    double bytes = 0.0;   ///< Known memory traffic (0 = unknown).
};

namespace detail {
/** Hot-path gate; read via pmu::enabled() only. */
extern std::atomic<bool> g_enabled;
} // namespace detail

/** @return whether span profiling is armed (relaxed load). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Process-wide span profiler. Threads keep private frame stacks and
 * counter groups (opened lazily from the armed backend); completed
 * spans fold their exclusive deltas into a shared per-name table
 * under a mutex — spans are per kernel dispatch, not per work item,
 * so the lock is cold.
 *
 * Attribution is exclusive: a span's children (nested spans on the
 * same thread, including cooperative worker chunks run inside a
 * kernel span) are subtracted from its own total and counted under
 * their own names. Worker chunks carry the dispatching kernel's
 * span name, so summing a name across threads yields that kernel's
 * true multi-thread total.
 */
class Profiler
{
  public:
    /** @return the process-wide profiler. */
    static Profiler &instance();

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /**
     * Arm profiling with @p backend: clears prior totals, bumps the
     * thread-state generation (stale per-thread groups reopen on
     * next use), and enables the hot path.
     */
    void start(CounterBackend &backend);

    /** Disarm the hot path; totals remain readable. */
    void stop();

    /** @return the armed backend (nullptr before any start()). */
    CounterBackend *backend() const;

    /** Begin a span on this thread; callers check enabled() first. */
    void beginSpan(const char *name);

    /** End this thread's innermost span and fold in its delta. */
    void endSpan();

    /**
     * Read this thread's accumulating sample directly (opens the
     * thread's group on first use). @return false when disabled or
     * the group cannot be read. Used by bench_kernels to wrap whole
     * benchmark loops without span machinery.
     */
    bool readThreadSample(Sample &out);

    /**
     * Add @p bytes of known memory traffic to span @p name (shows
     * up as measured bytes/s). Accumulates across calls, mirroring
     * the counter totals.
     */
    void addSpanBytes(const std::string &name, double bytes);

    /** @return per-name aggregated stats, name-sorted. */
    std::vector<SpanStats> spanStats() const;

    /** Drop all totals (start() does this too). */
    void clear();

  private:
    Profiler() = default;

    struct Impl;
    Impl &impl() const;
};

/**
 * RAII span hook: begins a profiler span when profiling is armed.
 * Free (one relaxed load) when it is not. Embedded in
 * trace::ScopedSpan for kernel and worker spans.
 */
class Scope
{
  public:
    explicit Scope(const char *name)
    {
        if (enabled()) {
            active_ = true;
            Profiler::instance().beginSpan(name);
        }
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    ~Scope()
    {
        if (active_)
            Profiler::instance().endSpan();
    }

  private:
    bool active_ = false;
};

/**
 * Publish the profiler's aggregated per-span metrics as
 * `pmu.<span>.<metric>` gauges in the metrics registry (IPC, miss
 * rates, task-clock seconds, raw cycle/instruction totals). No-op
 * while no session has armed profiling. Called at scrape/report
 * time, not per span.
 */
void publishGauges();

/** @return whether a Session has armed profiling this run (report
 *  writers use this to decide whether to emit a `pmu` block even
 *  after the session disarmed the hot path). */
bool profilingActive();

/**
 * RAII profiling capture for a CLI run, the PMU analogue of
 * trace::Session: armed by the `--pmu` flag, it probes the host
 * backend once, enables the profiler, and on destruction disarms it,
 * publishes the registry gauges, and logs a one-line per-kernel
 * summary at INFO. Inactive sessions cost nothing.
 */
class Session
{
  public:
    /** Inactive session (profiling stays off). */
    Session() = default;

    /** @param arm Arm profiling (the `--pmu` flag). */
    explicit Session(bool arm);

    Session(Session &&other) noexcept;
    Session &operator=(Session &&other) noexcept;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    ~Session();

    /** @return whether this session armed profiling. */
    bool
    active() const
    {
        return armed_;
    }

  private:
    void finish();

    bool armed_ = false;
};

} // namespace slambench::support::pmu

#endif // SLAMBENCH_SUPPORT_PMU_HPP
