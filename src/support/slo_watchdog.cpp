#include "support/slo_watchdog.hpp"

#include <algorithm>
#include <sstream>

#include "metrics/timing.hpp"
#include "support/flight_recorder.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace slambench::support::telemetry {

namespace detail {
std::atomic<bool> g_live_telemetry{false};
} // namespace detail

namespace {

/** Current run of consecutive tracking failures (frameTick state). */
std::atomic<int64_t> g_consecutive_failures{0};

} // namespace

SloWatchdog &
SloWatchdog::instance()
{
    static SloWatchdog watchdog;
    return watchdog;
}

void
SloWatchdog::configure(const SloThresholds &thresholds)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        thresholds_ = thresholds;
        breaches_.clear();
        poolStates_.clear();
    }
    healthy_.store(true, std::memory_order_relaxed);
    enabled_.store(thresholds.anyEnabled(),
                   std::memory_order_relaxed);
    metrics::Registry::instance().gauge("slo.healthy").set(1.0);
}

void
SloWatchdog::reset()
{
    configure(SloThresholds{});
}

SloThresholds
SloWatchdog::thresholds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return thresholds_;
}

void
SloWatchdog::recordBreach(const char *slo, double value,
                          double limit, uint64_t frame)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const bool latched = std::any_of(
            breaches_.begin(), breaches_.end(),
            [slo](const SloBreach &b) { return b.slo == slo; });
        if (latched)
            return;
        SloBreach breach;
        breach.slo = slo;
        breach.value = value;
        breach.limit = limit;
        breach.frame = frame;
        breach.ns = slambench::metrics::now_ns();
        breaches_.push_back(std::move(breach));
    }
    healthy_.store(false, std::memory_order_relaxed);
    auto &registry = metrics::Registry::instance();
    registry.counter("slo.breaches").add(1);
    registry.gauge("slo.healthy").set(0.0);
    FlightRecorder::instance().record(EventKind::SloBreach, frame,
                                      value, limit, slo);
    logWarn() << "slo: breach slo=" << slo << " value=" << value
              << " limit=" << limit << " frame=" << frame;
}

void
SloWatchdog::onFrame(uint64_t frame, double ateMeters,
                     int64_t consecutiveFailures)
{
    if (!enabled())
        return;
    SloThresholds t;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        t = thresholds_;
    }
    if (t.frameP99Seconds > 0.0) {
        const auto &hist = metrics::Registry::instance().histogram(
            "live.frame_wall_seconds");
        if (hist.count() > 0) {
            const double p99 = hist.quantile(0.99);
            if (p99 > t.frameP99Seconds)
                recordBreach("frame_p99_seconds", p99,
                             t.frameP99Seconds, frame);
        }
    }
    if (t.maxAteMeters > 0.0 && ateMeters > t.maxAteMeters)
        recordBreach("ate_meters", ateMeters, t.maxAteMeters,
                     frame);
    if (t.maxConsecutiveTrackingFailures > 0 &&
        consecutiveFailures > t.maxConsecutiveTrackingFailures)
        recordBreach(
            "consecutive_tracking_failures",
            static_cast<double>(consecutiveFailures),
            static_cast<double>(t.maxConsecutiveTrackingFailures),
            frame);
}

void
SloWatchdog::checkPools(uint64_t frame)
{
    if (!enabled())
        return;
    double stall_seconds = 0.0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stall_seconds = thresholds_.poolQueueStallSeconds;
    }
    if (stall_seconds <= 0.0)
        return;

    const uint64_t now = slambench::metrics::now_ns();
    double worst_stall = 0.0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ThreadPool::forEachPool([&](const ThreadPool &pool) {
            const uint64_t executed = pool.tasksExecuted();
            const size_t depth = pool.queueDepth();
            auto it = std::find_if(
                poolStates_.begin(), poolStates_.end(),
                [&pool](const PoolState &s) {
                    return s.pool == &pool;
                });
            if (it == poolStates_.end()) {
                PoolState state;
                state.pool = &pool;
                state.tasksExecuted = executed;
                state.sinceNs = now;
                poolStates_.push_back(state);
                return;
            }
            if (executed != it->tasksExecuted || depth == 0) {
                // Progress (or nothing queued): restart the window.
                it->tasksExecuted = executed;
                it->sinceNs = now;
                return;
            }
            const double stalled =
                static_cast<double>(now - it->sinceNs) * 1e-9;
            worst_stall = std::max(worst_stall, stalled);
        });
    }
    if (worst_stall > stall_seconds)
        recordBreach("pool_queue_stall", worst_stall, stall_seconds,
                     frame);
}

std::vector<SloBreach>
SloWatchdog::breaches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breaches_;
}

std::string
SloWatchdog::healthzText() const
{
    if (healthy())
        return "ok\n";
    std::ostringstream out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const SloBreach &b : breaches_)
        out << "breach: " << b.slo << " value=" << b.value
            << " limit=" << b.limit << " frame=" << b.frame << "\n";
    return out.str();
}

void
setLiveTelemetry(bool enabled)
{
    detail::g_live_telemetry.store(enabled,
                                   std::memory_order_relaxed);
    if (enabled)
        g_consecutive_failures.store(0, std::memory_order_relaxed);
}

void
frameTick(uint64_t frame, double wallSeconds, double ateMeters,
          bool tracked)
{
    // Cached handles: registration takes the Registry mutex; lookups
    // after the first frame are pointer reads.
    auto &registry = metrics::Registry::instance();
    static auto &frame_hist =
        registry.histogram("live.frame_wall_seconds");
    static auto &ate_hist = registry.histogram("live.frame_ate_m");
    static auto &frames = registry.counter("live.frames");
    static auto &failures =
        registry.counter("live.tracking_failures");
    static auto &last_frame_gauge =
        registry.gauge("live.last_frame_seconds");
    static auto &last_ate_gauge = registry.gauge("live.last_ate_m");
    static auto &consecutive_gauge =
        registry.gauge("live.consecutive_tracking_failures");

    frame_hist.record(wallSeconds);
    ate_hist.record(ateMeters);
    frames.add(1);
    last_frame_gauge.set(wallSeconds);
    last_ate_gauge.set(ateMeters);

    int64_t consecutive;
    if (tracked) {
        consecutive = 0;
        g_consecutive_failures.store(0, std::memory_order_relaxed);
    } else {
        consecutive = g_consecutive_failures.fetch_add(
                          1, std::memory_order_relaxed) +
                      1;
        failures.add(1);
    }
    consecutive_gauge.set(static_cast<double>(consecutive));

    auto &recorder = FlightRecorder::instance();
    if (recorder.enabled()) {
        recorder.record(EventKind::Frame, frame, wallSeconds,
                        ateMeters, tracked ? "tracked" : "lost");
        if (!tracked)
            recorder.record(EventKind::TrackingFailure, frame,
                            static_cast<double>(consecutive),
                            ateMeters, "");
    }

    auto &watchdog = SloWatchdog::instance();
    if (watchdog.enabled()) {
        watchdog.onFrame(frame, ateMeters, consecutive);
        watchdog.checkPools(frame);
    }
}

} // namespace slambench::support::telemetry
