#include "support/csv.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

#include "support/logging.hpp"

namespace slambench::support {

CsvWriter::CsvWriter(std::ostream &out, std::vector<std::string> columns)
    : out_(out), columns_(columns.size())
{
    if (columns.empty())
        panic("CsvWriter: header must have at least one column");
    for (size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(columns[i]);
    }
    out_ << '\n';
}

CsvWriter::~CsvWriter()
{
    endRow();
}

CsvWriter &
CsvWriter::beginRow()
{
    endRow();
    rowOpen_ = true;
    cellsInRow_ = 0;
    return *this;
}

void
CsvWriter::writeRaw(const std::string &value)
{
    if (!rowOpen_)
        beginRow();
    if (cellsInRow_ >= columns_)
        panic("CsvWriter: more cells than header columns");
    if (cellsInRow_)
        out_ << ',';
    out_ << value;
    ++cellsInRow_;
}

CsvWriter &
CsvWriter::cell(const std::string &value)
{
    writeRaw(escape(value));
    return *this;
}

CsvWriter &
CsvWriter::cell(const char *value)
{
    return cell(std::string(value));
}

CsvWriter &
CsvWriter::cell(double value)
{
    std::ostringstream ss;
    ss << std::setprecision(std::numeric_limits<double>::max_digits10)
       << value;
    writeRaw(ss.str());
    return *this;
}

CsvWriter &
CsvWriter::cell(int64_t value)
{
    writeRaw(std::to_string(value));
    return *this;
}

CsvWriter &
CsvWriter::cell(uint64_t value)
{
    writeRaw(std::to_string(value));
    return *this;
}

void
CsvWriter::endRow()
{
    if (!rowOpen_)
        return;
    if (cellsInRow_ != columns_)
        panic("CsvWriter: row has fewer cells than header columns");
    out_ << '\n';
    rowOpen_ = false;
    ++rows_;
}

std::string
CsvWriter::escape(const std::string &value)
{
    const bool needs_quote =
        value.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return value;
    std::string quoted = "\"";
    for (char c : value) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace slambench::support
