#ifndef SLAMBENCH_SUPPORT_RNG_HPP
#define SLAMBENCH_SUPPORT_RNG_HPP

/**
 * @file
 * Deterministic random number generation.
 *
 * All experiments in this repository must be bit-reproducible across
 * runs, so every randomized component takes an explicit Rng seeded by
 * the caller. The generator is xoroshiro128++ seeded via SplitMix64.
 */

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace slambench::support {

/**
 * Small, fast, deterministic PRNG (xoroshiro128++).
 *
 * Not cryptographically secure; statistical quality is more than
 * sufficient for sampling, bootstrapping, and noise injection.
 */
class Rng
{
  public:
    /**
     * Construct from a 64-bit seed, expanded with SplitMix64.
     *
     * @param seed Any value, including 0, is a valid seed.
     */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        uint64_t x = seed;
        state0_ = splitmix64(x);
        state1_ = splitmix64(x);
        if (state0_ == 0 && state1_ == 0)
            state1_ = 1;
    }

    /** @return the next raw 64-bit value. */
    uint64_t
    nextU64()
    {
        const uint64_t s0 = state0_;
        uint64_t s1 = state1_;
        const uint64_t result = rotl(s0 + s1, 17) + s0;
        s1 ^= s0;
        state0_ = rotl(s0, 49) ^ s1 ^ (s1 << 21);
        state1_ = rotl(s1, 28);
        return result;
    }

    /** @return a double uniform in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /**
     * @param lo Inclusive lower bound.
     * @param hi Exclusive upper bound; must satisfy hi > lo.
     * @return a double uniform in [lo, hi).
     */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /**
     * @param n Exclusive upper bound; must be > 0.
     * @return an integer uniform in [0, n).
     */
    uint64_t
    uniformInt(uint64_t n)
    {
        // Multiply-shift rejection-free mapping (slight, irrelevant bias
        // for the n << 2^64 values used here).
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(nextU64()) * n) >> 64);
    }

    /**
     * @param lo Inclusive lower bound.
     * @param hi Inclusive upper bound; must satisfy hi >= lo.
     * @return an integer uniform in [lo, hi].
     */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            uniformInt(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** @return a standard normal deviate (Marsaglia polar method). */
    double
    normal()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double m = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * m;
        haveSpare_ = true;
        return u * m;
    }

    /**
     * @param mean Mean of the distribution.
     * @param sigma Standard deviation; must be >= 0.
     * @return a normal deviate with the given moments.
     */
    double
    normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /** @param p Success probability in [0, 1]. @return true w.p. p. */
    bool bernoulli(double p) { return uniform() < p; }

    /**
     * Fisher-Yates shuffle of @p items in place.
     */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            const size_t j = uniformInt(static_cast<uint64_t>(i));
            std::swap(items[i - 1], items[j]);
        }
    }

    /** @return a derived Rng whose stream is independent of this one. */
    Rng
    split()
    {
        const uint64_t a = nextU64();
        return Rng(a ^ 0xd1b54a32d192ed03ull);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state0_;
    uint64_t state1_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace slambench::support

#endif // SLAMBENCH_SUPPORT_RNG_HPP
