#ifndef SLAMBENCH_SUPPORT_LOGGING_HPP
#define SLAMBENCH_SUPPORT_LOGGING_HPP

/**
 * @file
 * Minimal logging and error-reporting facilities.
 *
 * Follows the gem5 convention: fatal() is for user errors that make it
 * impossible to continue (bad configuration, missing files); panic() is
 * for internal invariant violations that indicate a bug in this library.
 */

#include <sstream>
#include <string>

namespace slambench::support {

/** Severity of a log record. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Set the global minimum severity; records below it are dropped.
 *
 * @param level New threshold. Defaults to Info at program start.
 */
void setLogLevel(LogLevel level);

/** @return the current global minimum severity. */
LogLevel logLevel();

/**
 * Emit a log record to stderr if @p level passes the global threshold.
 * While a request-trace correlation id is set on the calling thread
 * (setLogTraceId), the record gets a ` trace_id=<16 hex>` suffix so a
 * log line, a histogram exemplar, and a /tracez lookup meet at the
 * same id.
 *
 * @param level Severity of the record.
 * @param message Preformatted message body.
 */
void logMessage(LogLevel level, const std::string &message);

/**
 * Set this thread's log correlation id; 0 clears it. Installed and
 * restored by trace::ScopedTraceContext around request-scoped work —
 * do not set it manually on hot paths.
 */
void setLogTraceId(uint64_t trace_id);

/** @return this thread's log correlation id (0 = none). */
uint64_t logTraceId();

/**
 * Report an unrecoverable *user* error and exit(1).
 *
 * @param message Explanation shown to the user.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Report an internal invariant violation and abort().
 *
 * @param message Explanation of the broken invariant.
 */
[[noreturn]] void panic(const std::string &message);

namespace detail {

/** Stream-builder that emits its buffer as one log record on destruction. */
class LogStream
{
  public:
    explicit LogStream(LogLevel level) : level_(level) {}

    LogStream(const LogStream &) = delete;
    LogStream &operator=(const LogStream &) = delete;

    ~LogStream() { logMessage(level_, buffer_.str()); }

    template <typename T>
    LogStream &
    operator<<(const T &value)
    {
        buffer_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream buffer_;
};

} // namespace detail

/** @return a stream that logs at Debug severity when destroyed. */
inline detail::LogStream logDebug() { return detail::LogStream(LogLevel::Debug); }
/** @return a stream that logs at Info severity when destroyed. */
inline detail::LogStream logInfo() { return detail::LogStream(LogLevel::Info); }
/** @return a stream that logs at Warn severity when destroyed. */
inline detail::LogStream logWarn() { return detail::LogStream(LogLevel::Warn); }
/** @return a stream that logs at Error severity when destroyed. */
inline detail::LogStream logError() { return detail::LogStream(LogLevel::Error); }

} // namespace slambench::support

#endif // SLAMBENCH_SUPPORT_LOGGING_HPP
