#ifndef SLAMBENCH_SUPPORT_METRICS_HPP
#define SLAMBENCH_SUPPORT_METRICS_HPP

/**
 * @file
 * Run-level telemetry: a thread-safe metrics registry (counters,
 * gauges, fixed-bucket latency histograms) plus the versioned
 * machine-readable run report every bench emits via
 * `--metrics-json` / `--frames-csv`.
 *
 * This is the run-level companion of the span tracer
 * (`support/trace.hpp`): the tracer answers "where did this frame's
 * time go", the registry and run report answer "how did this run do"
 * in a form `scripts/bench_compare.py` can diff against a previous
 * run and gate regressions on. The report schema is documented in
 * docs/OBSERVABILITY.md and validated by
 * `scripts/check_metrics_schema.py` (the `metrics_smoke` CTest
 * entry).
 *
 * Cost model: counters and gauges are single relaxed atomics;
 * histogram recording is one atomic increment plus a handful of CAS
 * updates. Registry handles returned by counter()/gauge()/histogram()
 * are stable for the process lifetime (resetValues() zeroes values
 * but never invalidates references), so hot paths can cache them in
 * function-local statics.
 */

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace slambench::support {
class CsvWriter;
} // namespace slambench::support

namespace slambench::support::metrics {

/** Monotonically increasing event counter. */
class Counter
{
  public:
    /** Add @p n to the counter (relaxed; thread-safe). */
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** @return the current count. */
    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the counter. */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-value-wins scalar sample (peak RSS, model error, ...). */
class Gauge
{
  public:
    /** Set the gauge (relaxed; thread-safe). */
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Raise the gauge to @p v if larger (high-water mark). */
    void setMax(double v);

    /** @return the last value set (0 before any set()). */
    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the gauge. */
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket latency histogram: geometric buckets covering 100 ns
 * to 1000 s (8 per decade, ratio 10^(1/8) ~ 1.33), plus an underflow
 * and an overflow bucket. Quantiles (p50/p90/p99) are interpolated
 * from the bucket counts without storing samples, so recording is
 * O(1) and the memory footprint is constant; the coarse bucket width
 * bounds the quantile error at ~15% (half a bucket), which is
 * plenty for regression gating.
 *
 * Thread-safe: buckets and count are relaxed atomics, sum/min/max
 * use CAS loops. All values are seconds.
 */
class LatencyHistogram
{
  public:
    /** Geometric buckets per decade of the covered range. */
    static constexpr size_t kBucketsPerDecade = 8;
    /** log10 of the first bounded bucket's lower edge (100 ns). */
    static constexpr int kLogLo = -7;
    /** log10 of the last bounded bucket's upper edge (1000 s). */
    static constexpr int kLogHi = 3;
    /** Bounded buckets plus underflow (index 0) and overflow. */
    static constexpr size_t kNumBuckets =
        static_cast<size_t>(kLogHi - kLogLo) * kBucketsPerDecade + 2;

    /** Record one latency sample, seconds (thread-safe). */
    void record(double seconds);

    /** @return number of samples recorded. */
    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** @return exact sum of all samples, seconds. */
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    /** @return exact mean, seconds (0 when empty). */
    double mean() const;
    /** @return smallest sample (0 when empty). */
    double min() const;
    /** @return largest sample (0 when empty). */
    double max() const;

    /**
     * Estimate the @p q quantile (0..1) by linear interpolation
     * within the bucket containing the target rank, clamped to the
     * exact [min, max] envelope.
     */
    double quantile(double q) const;

    /** @return number of buckets (including underflow/overflow). */
    size_t numBuckets() const { return kNumBuckets; }
    /** @return inclusive lower edge of bucket @p i, seconds. */
    double bucketLo(size_t i) const;
    /** @return exclusive upper edge of bucket @p i, seconds. */
    double bucketHi(size_t i) const;
    /** @return samples recorded into bucket @p i. */
    uint64_t
    bucketCount(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** @return index of the bucket a @p seconds sample lands in. */
    size_t
    bucketIndexFor(double seconds) const
    {
        return bucketIndex(seconds);
    }

    /**
     * @return index of the highest populated bucket, or numBuckets()
     * when empty. With bucketIndexFor(), this is the request
     * tracer's "top histogram bucket" tail-retention signal: a
     * sample is in the tail iff its bucket index is >= this.
     */
    size_t highestPopulatedBucket() const;

    /** Zero all buckets and statistics. */
    void reset();

  private:
    size_t bucketIndex(double seconds) const;

    std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{
        std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{
        -std::numeric_limits<double>::infinity()};
};

/**
 * One entry of the async-signal-safe registry index: an immutable
 * singly-linked node naming a registered metric and pointing at its
 * (process-lifetime) storage. The Registry pushes one node per
 * metric at registration via a lock-free CAS, so a fatal-signal
 * handler can walk the list and read every metric's atomics without
 * taking the Registry mutex or allocating (see
 * support/flight_recorder.hpp). Nodes are newest-first and never
 * freed.
 */
struct CrashIndexNode
{
    /** Which metric family @ref metric points into. */
    enum class Kind
    {
        Counter,  ///< metric is a `const Counter *`.
        Gauge,    ///< metric is a `const Gauge *`.
        Histogram ///< metric is a `const LatencyHistogram *`.
    };

    /** Metric name (heap copy owned by the node, never freed). */
    const char *name;
    Kind kind;           ///< Type tag for @ref metric.
    const void *metric;  ///< The metric's stable storage.
    const CrashIndexNode *next; ///< Next (older) node or nullptr.
};

/**
 * @return the newest node of the crash index (nullptr when no metric
 * has been registered). Async-signal-safe: a single acquire load.
 */
const CrashIndexNode *crashIndexHead();

/**
 * Process-wide metrics registry.
 *
 * Metrics are created on first access by name and live for the
 * process lifetime; the returned references are stable, so callers
 * may cache them (function-local statics on hot paths). Counters,
 * gauges, and histograms occupy independent namespaces.
 */
class Registry
{
  public:
    /** @return the process-wide registry. */
    static Registry &instance();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** @return the counter named @p name, creating it if needed. */
    Counter &counter(const std::string &name);
    /** @return the gauge named @p name, creating it if needed. */
    Gauge &gauge(const std::string &name);
    /** @return the histogram named @p name, creating it if needed. */
    LatencyHistogram &histogram(const std::string &name);

    /** @return (name, value) snapshot of all counters, name-sorted. */
    std::vector<std::pair<std::string, uint64_t>> counters() const;
    /** @return (name, value) snapshot of all gauges, name-sorted. */
    std::vector<std::pair<std::string, double>> gauges() const;
    /** @return (name, histogram) pairs, name-sorted; pointers stay
     *  valid for the process lifetime. */
    std::vector<std::pair<std::string, const LatencyHistogram *>>
    histograms() const;

    /**
     * Zero every registered metric's value. Registrations (and the
     * references handed out) survive, so cached handles in hot paths
     * remain valid; benches call this before a measured run.
     */
    void resetValues();

  private:
    Registry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>>
        histograms_;
};

/**
 * Per-frame telemetry record: one row of the `--frames-csv` export.
 * The phase times partition WorkCounts host time by pipeline stage
 * (preprocess = depth conversion/filter/pyramid maps, track =
 * ICP+reduce+solve, integrate = TSDF fusion, raycast = surface
 * extraction + rendering); `core::frameTelemetry()` fills one from a
 * benchmark run.
 */
struct FrameTelemetry
{
    /** Run label within the bench ("default", "tuned", ...). */
    std::string label = "run";
    uint64_t frame = 0;        ///< Frame index within the run.
    double wallSeconds = 0.0;  ///< Host wall time of the frame.
    double preprocessSeconds = 0.0;
    double trackSeconds = 0.0;
    double integrateSeconds = 0.0;
    double raycastSeconds = 0.0;
    double ateMeters = 0.0;    ///< Trajectory error at this frame.
    bool tracked = false;      ///< Pose accepted by the gates.
    bool integrated = false;   ///< Volume updated this frame.
    double simJoules = 0.0;    ///< Modeled energy (power monitor).
    double rssPeakBytes = 0.0; ///< Process RSS high-water mark.
};

/**
 * @return the process's peak resident set size in bytes (VmHWM),
 * or 0 when unavailable on this platform.
 */
double peakRssBytes();

/** @return process CPU time (user + system), seconds. */
double processCpuSeconds();

/** @return the build's `git describe` string ("unknown" if none). */
const char *gitDescribe();

/** @return the CMake build type this binary was compiled with. */
const char *buildType();

/**
 * RAII run-report capture for a CLI run, the metrics analogue of
 * trace::Session: construct from the `--metrics-json` /
 * `--frames-csv` flags, feed it config parameters, per-frame
 * telemetry, and summary scalars while the bench runs, and the
 * report files are written (and announced at INFO) on destruction.
 * With both paths empty the session is inert and records nothing.
 *
 * The per-frame CSV streams: rows are written as frames arrive and
 * the file is flushed every kCsvFlushInterval frames, so a crashed
 * run loses at most one window (the `metrics.frames.flushed` counter
 * tracks rows durably flushed). Recording is thread-safe, and the
 * process's most recent active session is readable while the run is
 * still in flight via writeCurrentJson() (the telemetry server's
 * /runz endpoint).
 */
class RunSession
{
  public:
    /** Version stamped into every report as `schema_version`. */
    static constexpr int kSchemaVersion = 1;

    /** Frames per streaming-CSV flush window. */
    static constexpr size_t kCsvFlushInterval = 32;

    /** Inactive session. */
    RunSession();

    /**
     * @param json_path Run-report JSON output path ("" = skip).
     * @param csv_path Per-frame telemetry CSV path ("" = skip).
     * @param generator Name of the producing binary, stamped into
     *        the report.
     */
    RunSession(std::string json_path, std::string csv_path,
               std::string generator);

    RunSession(RunSession &&other) noexcept;
    RunSession &operator=(RunSession &&other) noexcept;
    RunSession(const RunSession &) = delete;
    RunSession &operator=(const RunSession &) = delete;

    /** Writes the requested files when the session is active. */
    ~RunSession();

    /** @return whether any output was requested. */
    bool active() const { return active_; }

    /** Record one configuration parameter (insertion-ordered). */
    void setParam(const std::string &key, const std::string &value);

    /** Record an extra summary scalar (insertion-ordered). */
    void setSummary(const std::string &key, double value);

    /** Append one frame's telemetry. */
    void addFrame(const FrameTelemetry &telemetry);

    /** @return frames recorded so far. */
    size_t frameCount() const { return frames_.size(); }

    /**
     * Write the versioned run report (schema in
     * docs/OBSERVABILITY.md) to @p os. Callable any time; the
     * destructor uses it for the `--metrics-json` file.
     */
    void writeJson(std::ostream &os) const;

    /** Write the per-frame telemetry CSV to @p os. */
    void writeFramesCsv(std::ostream &os) const;

    /**
     * Export the requested files now (idempotent; the destructor
     * calls it). Logs output paths and a one-line run summary at
     * INFO, so `--quiet` suppresses them.
     */
    void finish();

    /**
     * Write the run report of the process's current active session
     * (the most recently constructed one still alive) to @p os.
     * Thread-safe against the owning thread recording frames.
     *
     * @return false when no session is active (@p os untouched).
     */
    static bool writeCurrentJson(std::ostream &os);

  private:
    /** Publish this session as the process-current one. */
    void registerCurrent();
    /** Retract this session if it is the process-current one. */
    void unregisterCurrent();
    /** Stream queued CSV rows; flush when a window completed or
     *  @p final_flush. Caller holds *mutex_. */
    void flushCsvLocked(bool final_flush);

    std::string jsonPath_;
    std::string csvPath_;
    std::string generator_;
    bool active_ = false;
    uint64_t startNs_ = 0;
    double startCpuSeconds_ = 0.0;
    std::vector<std::pair<std::string, std::string>> params_;
    std::vector<std::pair<std::string, double>> extraSummary_;
    std::vector<FrameTelemetry> frames_;

    /** Guards the vectors and CSV stream; always allocated (and
     *  re-allocated for a moved-from shell) so sessions stay
     *  movable while lockable from other threads. */
    std::unique_ptr<std::mutex> mutex_ =
        std::make_unique<std::mutex>();
    /** Streaming CSV sink (open for the whole run); unique_ptrs so
     *  the CsvWriter's stream reference survives moves. */
    std::unique_ptr<std::ofstream> csvStream_;
    std::unique_ptr<CsvWriter> csvWriter_;
    /** Frames whose CSV rows reached the OS (flush window base). */
    size_t csvRowsFlushed_ = 0;
};

} // namespace slambench::support::metrics

#endif // SLAMBENCH_SUPPORT_METRICS_HPP
