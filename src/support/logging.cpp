#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace slambench::support {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;

/** Per-thread request-trace correlation id (0 = none). */
thread_local uint64_t t_log_trace_id = 0;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    if (t_log_trace_id != 0)
        std::fprintf(stderr, "[%s] %s trace_id=%016llx\n",
                     levelName(level), message.c_str(),
                     static_cast<unsigned long long>(
                         t_log_trace_id));
    else
        std::fprintf(stderr, "[%s] %s\n", levelName(level),
                     message.c_str());
}

void
setLogTraceId(uint64_t trace_id)
{
    t_log_trace_id = trace_id;
}

uint64_t
logTraceId()
{
    return t_log_trace_id;
}

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "[FATAL] %s\n", message.c_str());
    std::exit(1);
}

void
panic(const std::string &message)
{
    std::fprintf(stderr, "[PANIC] %s\n", message.c_str());
    std::abort();
}

} // namespace slambench::support
