#ifndef SLAMBENCH_SUPPORT_STATS_HPP
#define SLAMBENCH_SUPPORT_STATS_HPP

/**
 * @file
 * Streaming statistics and histograms for metric aggregation.
 */

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace slambench::support {

/**
 * Welford streaming accumulator for mean/variance plus min/max.
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** @return number of samples seen. */
    size_t count() const { return count_; }
    /** @return sample mean, or 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** @return unbiased sample variance, or 0 with < 2 samples. */
    double variance() const;
    /** @return sqrt(variance()). */
    double stddev() const;
    /** @return smallest sample, or +inf when empty. */
    double min() const { return min_; }
    /** @return largest sample, or -inf when empty. */
    double max() const { return max_; }
    /** @return sum of all samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStat &other);

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Compute the p-th percentile (0..100) by linear interpolation of the
 * sorted samples. @p samples is copied; empty input returns 0.
 */
double percentile(std::vector<double> samples, double p);

/**
 * Fixed-range histogram with uniform bins, used for the Fig. 3
 * speed-up distribution readout.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin; must be > lo.
     * @param bins Number of bins; must be >= 1.
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add a sample; out-of-range values clamp to the edge bins. */
    void add(double x);

    /** @return count in bin @p i. */
    uint64_t binCount(size_t i) const { return counts_[i]; }
    /** @return number of bins. */
    size_t numBins() const { return counts_.size(); }
    /** @return inclusive lower edge of bin @p i. */
    double binLo(size_t i) const;
    /** @return exclusive upper edge of bin @p i. */
    double binHi(size_t i) const;
    /** @return total samples added. */
    uint64_t total() const { return total_; }

    /**
     * Render as an ASCII bar chart, one bin per line.
     *
     * @param max_bar_width Width in characters of the longest bar.
     */
    std::string toAscii(size_t max_bar_width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace slambench::support

#endif // SLAMBENCH_SUPPORT_STATS_HPP
