#ifndef SLAMBENCH_SUPPORT_IMAGE_HPP
#define SLAMBENCH_SUPPORT_IMAGE_HPP

/**
 * @file
 * Dense 2D image buffers and portable-anymap (PPM/PGM) export.
 *
 * Image<T> is the carrier type for every per-pixel map in the pipeline
 * (depth maps, vertex maps, normal maps, RGB frames, track data).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace slambench::support {

/** 8-bit RGB pixel. */
struct Rgb8
{
    uint8_t r = 0;
    uint8_t g = 0;
    uint8_t b = 0;

    friend bool
    operator==(const Rgb8 &a, const Rgb8 &b)
    {
        return a.r == b.r && a.g == b.g && a.b == b.b;
    }
};

/**
 * Row-major dense 2D buffer.
 *
 * @tparam T Pixel type; must be default-constructible.
 */
template <typename T>
class Image
{
  public:
    /** Construct an empty (0x0) image. */
    Image() = default;

    /**
     * Construct a width x height image with value-initialized pixels.
     */
    Image(size_t width, size_t height)
        : width_(width), height_(height), pixels_(width * height)
    {}

    /** Construct with every pixel set to @p fill. */
    Image(size_t width, size_t height, const T &fill)
        : width_(width), height_(height), pixels_(width * height, fill)
    {}

    /** @return image width in pixels. */
    size_t width() const { return width_; }
    /** @return image height in pixels. */
    size_t height() const { return height_; }
    /** @return total pixel count. */
    size_t size() const { return pixels_.size(); }
    /** @return true when the image has no pixels. */
    bool empty() const { return pixels_.empty(); }

    /** Resize, discarding contents; pixels are value-initialized. */
    void
    resize(size_t width, size_t height)
    {
        width_ = width;
        height_ = height;
        pixels_.assign(width * height, T{});
    }

    /** Set every pixel to @p value. */
    void
    fill(const T &value)
    {
        pixels_.assign(pixels_.size(), value);
    }

    /** Unchecked pixel access. */
    T &operator()(size_t x, size_t y) { return pixels_[y * width_ + x]; }
    /** Unchecked pixel access. */
    const T &
    operator()(size_t x, size_t y) const
    {
        return pixels_[y * width_ + x];
    }

    /** Linear access by pixel index. */
    T &operator[](size_t i) { return pixels_[i]; }
    /** Linear access by pixel index. */
    const T &operator[](size_t i) const { return pixels_[i]; }

    /** @return true when (x, y) lies inside the image. */
    bool
    contains(long x, long y) const
    {
        return x >= 0 && y >= 0 && static_cast<size_t>(x) < width_ &&
               static_cast<size_t>(y) < height_;
    }

    /** @return pointer to the first pixel of row-major storage. */
    T *data() { return pixels_.data(); }
    /** @return pointer to the first pixel of row-major storage. */
    const T *data() const { return pixels_.data(); }

  private:
    size_t width_ = 0;
    size_t height_ = 0;
    std::vector<T> pixels_;
};

/**
 * Write an RGB image as a binary PPM (P6) file.
 *
 * @param image Source pixels.
 * @param path Destination file path.
 * @return true on success, false on I/O failure.
 */
bool writePpm(const Image<Rgb8> &image, const std::string &path);

/**
 * Write a float image as an 8-bit binary PGM (P5), linearly mapping
 * [lo, hi] to [0, 255] and clamping outside values.
 *
 * @param image Source pixels.
 * @param path Destination file path.
 * @param lo Value mapped to black.
 * @param hi Value mapped to white; must differ from @p lo.
 * @return true on success, false on I/O failure.
 */
bool writePgm(const Image<float> &image, const std::string &path,
              float lo, float hi);

/**
 * Render a float image as coarse ASCII art (for terminal inspection).
 *
 * @param image Source pixels.
 * @param out_width Character columns of the output (rows follow aspect
 *                  ratio with a 0.5 character-cell correction).
 * @param lo Value mapped to the darkest glyph.
 * @param hi Value mapped to the lightest glyph.
 * @return multi-line string.
 */
std::string asciiArt(const Image<float> &image, size_t out_width,
                     float lo, float hi);

} // namespace slambench::support

#endif // SLAMBENCH_SUPPORT_IMAGE_HPP
