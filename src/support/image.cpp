#include "support/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace slambench::support {

bool
writePpm(const Image<Rgb8> &image, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
    static_assert(sizeof(Rgb8) == 3, "Rgb8 must be tightly packed");
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size() * sizeof(Rgb8)));
    return static_cast<bool>(out);
}

bool
writePgm(const Image<float> &image, const std::string &path,
         float lo, float hi)
{
    if (hi == lo)
        return false;
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
    std::vector<uint8_t> row(image.width());
    for (size_t y = 0; y < image.height(); ++y) {
        for (size_t x = 0; x < image.width(); ++x) {
            const float t = (image(x, y) - lo) / (hi - lo);
            const float c = std::clamp(t, 0.0f, 1.0f) * 255.0f;
            row[x] = static_cast<uint8_t>(std::lround(c));
        }
        out.write(reinterpret_cast<const char *>(row.data()),
                  static_cast<std::streamsize>(row.size()));
    }
    return static_cast<bool>(out);
}

std::string
asciiArt(const Image<float> &image, size_t out_width, float lo, float hi)
{
    static const char glyphs[] = " .:-=+*#%@";
    const size_t levels = sizeof(glyphs) - 2;
    if (image.empty() || out_width == 0 || hi == lo)
        return "";

    const size_t out_w = std::min(out_width, image.width());
    // Terminal cells are roughly twice as tall as wide.
    const double scale = static_cast<double>(image.width()) / out_w;
    const size_t out_h = std::max<size_t>(
        1, static_cast<size_t>(image.height() / (scale * 2.0)));

    std::string art;
    art.reserve((out_w + 1) * out_h);
    for (size_t oy = 0; oy < out_h; ++oy) {
        for (size_t ox = 0; ox < out_w; ++ox) {
            const size_t sx = std::min(
                image.width() - 1, static_cast<size_t>(ox * scale));
            const size_t sy = std::min(
                image.height() - 1,
                static_cast<size_t>(oy * scale * 2.0));
            const float t =
                std::clamp((image(sx, sy) - lo) / (hi - lo), 0.0f, 1.0f);
            art += glyphs[static_cast<size_t>(t * levels)];
        }
        art += '\n';
    }
    return art;
}

} // namespace slambench::support
