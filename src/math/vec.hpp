#ifndef SLAMBENCH_MATH_VEC_HPP
#define SLAMBENCH_MATH_VEC_HPP

/**
 * @file
 * Fixed-size vector types used throughout the pipeline.
 *
 * Float precision (Vec3f, ...) is used inside the SLAM kernels to
 * match what GPU implementations of KinectFusion use; double precision
 * (Vec3d, ...) is used by the accuracy metrics and the DSE machinery.
 */

#include <cmath>
#include <cstddef>

namespace slambench::math {

/** 2-component vector. */
template <typename T>
struct Vec2
{
    T x{};
    T y{};

    constexpr Vec2() = default;
    constexpr Vec2(T x_, T y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(T s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(T s) const { return {x / s, y / s}; }

    constexpr T dot(const Vec2 &o) const { return x * o.x + y * o.y; }
    T norm() const { return std::sqrt(dot(*this)); }

    friend constexpr bool
    operator==(const Vec2 &a, const Vec2 &b)
    {
        return a.x == b.x && a.y == b.y;
    }
};

/** 3-component vector. */
template <typename T>
struct Vec3
{
    T x{};
    T y{};
    T z{};

    constexpr Vec3() = default;
    constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}

    /** Broadcast constructor. */
    static constexpr Vec3 all(T v) { return {v, v, v}; }

    constexpr Vec3
    operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }

    constexpr Vec3
    operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }

    constexpr Vec3 operator-() const { return {-x, -y, -z}; }
    constexpr Vec3 operator*(T s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(T s) const { return {x / s, y / s, z / s}; }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    Vec3 &
    operator-=(const Vec3 &o)
    {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }

    Vec3 &
    operator*=(T s)
    {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }

    /** Component-wise product. */
    constexpr Vec3
    cwise(const Vec3 &o) const
    {
        return {x * o.x, y * o.y, z * o.z};
    }

    constexpr T dot(const Vec3 &o) const { return x * o.x + y * o.y + z * o.z; }

    constexpr Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    constexpr T squaredNorm() const { return dot(*this); }
    T norm() const { return std::sqrt(squaredNorm()); }

    /** @return this / norm(); the zero vector is returned unchanged. */
    Vec3
    normalized() const
    {
        const T n = norm();
        return n > T(0) ? *this / n : *this;
    }

    /** Indexed access: 0 = x, 1 = y, 2 = z. */
    T &
    operator[](size_t i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    /** Indexed access: 0 = x, 1 = y, 2 = z. */
    const T &
    operator[](size_t i) const
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    friend constexpr bool
    operator==(const Vec3 &a, const Vec3 &b)
    {
        return a.x == b.x && a.y == b.y && a.z == b.z;
    }

    template <typename U>
    constexpr Vec3<U>
    cast() const
    {
        return {static_cast<U>(x), static_cast<U>(y), static_cast<U>(z)};
    }
};

template <typename T>
constexpr Vec3<T>
operator*(T s, const Vec3<T> &v)
{
    return v * s;
}

/** 4-component vector. */
template <typename T>
struct Vec4
{
    T x{};
    T y{};
    T z{};
    T w{};

    constexpr Vec4() = default;
    constexpr Vec4(T x_, T y_, T z_, T w_) : x(x_), y(y_), z(z_), w(w_) {}
    constexpr Vec4(const Vec3<T> &v, T w_) : x(v.x), y(v.y), z(v.z), w(w_) {}

    constexpr Vec3<T> xyz() const { return {x, y, z}; }

    constexpr T
    dot(const Vec4 &o) const
    {
        return x * o.x + y * o.y + z * o.z + w * o.w;
    }

    T norm() const { return std::sqrt(dot(*this)); }

    friend constexpr bool
    operator==(const Vec4 &a, const Vec4 &b)
    {
        return a.x == b.x && a.y == b.y && a.z == b.z && a.w == b.w;
    }
};

using Vec2f = Vec2<float>;
using Vec2d = Vec2<double>;
using Vec2i = Vec2<int>;
using Vec3f = Vec3<float>;
using Vec3d = Vec3<double>;
using Vec3i = Vec3<int>;
using Vec4f = Vec4<float>;
using Vec4d = Vec4<double>;

/** Linear interpolation between @p a and @p b at parameter @p t. */
template <typename T>
constexpr Vec3<T>
lerp(const Vec3<T> &a, const Vec3<T> &b, T t)
{
    return a + (b - a) * t;
}

} // namespace slambench::math

#endif // SLAMBENCH_MATH_VEC_HPP
