#include "math/solve.hpp"

#include <cmath>
#include <utility>

#include "math/se3.hpp"

namespace slambench::math {

bool
solveLdlt6(const std::array<double, 36> &a,
           const std::array<double, 6> &b,
           std::array<double, 6> &x)
{
    constexpr int n = 6;
    double l[n][n] = {};
    double d[n] = {};

    for (int j = 0; j < n; ++j) {
        double dj = a[j * n + j];
        for (int k = 0; k < j; ++k)
            dj -= l[j][k] * l[j][k] * d[k];
        if (!(dj > 1e-15))
            return false;
        d[j] = dj;
        l[j][j] = 1.0;
        for (int i = j + 1; i < n; ++i) {
            double v = a[i * n + j];
            for (int k = 0; k < j; ++k)
                v -= l[i][k] * l[j][k] * d[k];
            l[i][j] = v / dj;
        }
    }

    // Forward substitution: L y = b.
    double y[n];
    for (int i = 0; i < n; ++i) {
        double v = b[i];
        for (int k = 0; k < i; ++k)
            v -= l[i][k] * y[k];
        y[i] = v;
    }
    // Diagonal: D z = y.
    for (int i = 0; i < n; ++i)
        y[i] /= d[i];
    // Backward substitution: L^T x = z.
    for (int i = n - 1; i >= 0; --i) {
        double v = y[i];
        for (int k = i + 1; k < n; ++k)
            v -= l[k][i] * x[k];
        x[i] = v;
    }
    return true;
}

namespace {

/**
 * Cyclic Jacobi sweeps on a symmetric NxN matrix; returns eigenvalues
 * on the diagonal and accumulates rotations into @p v.
 */
template <int N>
void
jacobiSweep(std::array<std::array<double, N>, N> &a,
            std::array<std::array<double, N>, N> &v)
{
    for (int r = 0; r < N; ++r)
        for (int c = 0; c < N; ++c)
            v[r][c] = (r == c) ? 1.0 : 0.0;

    for (int sweep = 0; sweep < 64; ++sweep) {
        double off = 0.0;
        for (int p = 0; p < N; ++p)
            for (int q = p + 1; q < N; ++q)
                off += a[p][q] * a[p][q];
        if (off < 1e-24)
            break;

        for (int p = 0; p < N; ++p) {
            for (int q = p + 1; q < N; ++q) {
                if (std::abs(a[p][q]) < 1e-30)
                    continue;
                const double theta =
                    (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                const double t =
                    (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::abs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (int k = 0; k < N; ++k) {
                    const double akp = a[k][p];
                    const double akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for (int k = 0; k < N; ++k) {
                    const double apk = a[p][k];
                    const double aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for (int k = 0; k < N; ++k) {
                    const double vkp = v[k][p];
                    const double vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
}

template <int N>
EigenSym<N>
eigenSymImpl(const double *raw)
{
    std::array<std::array<double, N>, N> a;
    std::array<std::array<double, N>, N> v;
    for (int r = 0; r < N; ++r)
        for (int c = 0; c < N; ++c)
            a[r][c] = raw[r * N + c];

    jacobiSweep<N>(a, v);

    EigenSym<N> out;
    // Order eigenpairs by descending eigenvalue.
    std::array<int, N> order;
    for (int i = 0; i < N; ++i)
        order[i] = i;
    for (int i = 0; i < N; ++i)
        for (int j = i + 1; j < N; ++j)
            if (a[order[j]][order[j]] > a[order[i]][order[i]])
                std::swap(order[i], order[j]);

    for (int i = 0; i < N; ++i) {
        out.values[i] = a[order[i]][order[i]];
        for (int k = 0; k < N; ++k)
            out.vectors[i][k] = v[k][order[i]];
    }
    return out;
}

} // namespace

EigenSym<3>
eigenSym3(const std::array<double, 9> &a)
{
    return eigenSymImpl<3>(a.data());
}

EigenSym<4>
eigenSym4(const std::array<double, 16> &a)
{
    return eigenSymImpl<4>(a.data());
}

Mat3d
hornRotation(const Mat3d &cov)
{
    // Build Horn's symmetric 4x4 matrix whose principal eigenvector is
    // the optimal quaternion.
    const double sxx = cov(0, 0), sxy = cov(0, 1), sxz = cov(0, 2);
    const double syx = cov(1, 0), syy = cov(1, 1), syz = cov(1, 2);
    const double szx = cov(2, 0), szy = cov(2, 1), szz = cov(2, 2);

    std::array<double, 16> n{};
    n[0 * 4 + 0] = sxx + syy + szz;
    n[0 * 4 + 1] = syz - szy;
    n[0 * 4 + 2] = szx - sxz;
    n[0 * 4 + 3] = sxy - syx;
    n[1 * 4 + 0] = n[0 * 4 + 1];
    n[1 * 4 + 1] = sxx - syy - szz;
    n[1 * 4 + 2] = sxy + syx;
    n[1 * 4 + 3] = szx + sxz;
    n[2 * 4 + 0] = n[0 * 4 + 2];
    n[2 * 4 + 1] = n[1 * 4 + 2];
    n[2 * 4 + 2] = -sxx + syy - szz;
    n[2 * 4 + 3] = syz + szy;
    n[3 * 4 + 0] = n[0 * 4 + 3];
    n[3 * 4 + 1] = n[1 * 4 + 3];
    n[3 * 4 + 2] = n[2 * 4 + 3];
    n[3 * 4 + 3] = -sxx - syy + szz;

    const EigenSym<4> eig = eigenSym4(n);
    const Quat<double> q{eig.vectors[0][0], eig.vectors[0][1],
                         eig.vectors[0][2], eig.vectors[0][3]};
    return q.normalized().toMatrix();
}

} // namespace slambench::math
