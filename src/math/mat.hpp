#ifndef SLAMBENCH_MATH_MAT_HPP
#define SLAMBENCH_MATH_MAT_HPP

/**
 * @file
 * Small dense matrices: 3x3 rotations/covariances and 4x4 rigid-body
 * transforms, row-major.
 */

#include <cmath>
#include <cstddef>

#include "math/vec.hpp"

namespace slambench::math {

/** Row-major 3x3 matrix. */
template <typename T>
struct Mat3
{
    T m[3][3] = {{T(1), T(0), T(0)},
                 {T(0), T(1), T(0)},
                 {T(0), T(0), T(1)}};

    constexpr Mat3() = default;

    /** @return the identity matrix. */
    static constexpr Mat3 identity() { return Mat3(); }

    /** @return the all-zero matrix. */
    static constexpr Mat3
    zero()
    {
        Mat3 z;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                z.m[r][c] = T(0);
        return z;
    }

    /** Build from three row vectors. */
    static constexpr Mat3
    fromRows(const Vec3<T> &r0, const Vec3<T> &r1, const Vec3<T> &r2)
    {
        Mat3 a;
        a.m[0][0] = r0.x; a.m[0][1] = r0.y; a.m[0][2] = r0.z;
        a.m[1][0] = r1.x; a.m[1][1] = r1.y; a.m[1][2] = r1.z;
        a.m[2][0] = r2.x; a.m[2][1] = r2.y; a.m[2][2] = r2.z;
        return a;
    }

    /** Build from three column vectors. */
    static constexpr Mat3
    fromCols(const Vec3<T> &c0, const Vec3<T> &c1, const Vec3<T> &c2)
    {
        Mat3 a;
        a.m[0][0] = c0.x; a.m[0][1] = c1.x; a.m[0][2] = c2.x;
        a.m[1][0] = c0.y; a.m[1][1] = c1.y; a.m[1][2] = c2.y;
        a.m[2][0] = c0.z; a.m[2][1] = c1.z; a.m[2][2] = c2.z;
        return a;
    }

    /** Skew-symmetric cross-product matrix of @p v. */
    static constexpr Mat3
    skew(const Vec3<T> &v)
    {
        Mat3 a = zero();
        a.m[0][1] = -v.z; a.m[0][2] = v.y;
        a.m[1][0] = v.z;  a.m[1][2] = -v.x;
        a.m[2][0] = -v.y; a.m[2][1] = v.x;
        return a;
    }

    constexpr T &operator()(size_t r, size_t c) { return m[r][c]; }
    constexpr const T &operator()(size_t r, size_t c) const { return m[r][c]; }

    constexpr Vec3<T> row(size_t r) const { return {m[r][0], m[r][1], m[r][2]}; }
    constexpr Vec3<T> col(size_t c) const { return {m[0][c], m[1][c], m[2][c]}; }

    constexpr Vec3<T>
    operator*(const Vec3<T> &v) const
    {
        return {row(0).dot(v), row(1).dot(v), row(2).dot(v)};
    }

    constexpr Mat3
    operator*(const Mat3 &o) const
    {
        Mat3 out = zero();
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                for (int k = 0; k < 3; ++k)
                    out.m[r][c] += m[r][k] * o.m[k][c];
        return out;
    }

    constexpr Mat3
    operator+(const Mat3 &o) const
    {
        Mat3 out;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                out.m[r][c] = m[r][c] + o.m[r][c];
        return out;
    }

    constexpr Mat3
    operator*(T s) const
    {
        Mat3 out;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                out.m[r][c] = m[r][c] * s;
        return out;
    }

    constexpr Mat3
    transposed() const
    {
        Mat3 t;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                t.m[r][c] = m[c][r];
        return t;
    }

    constexpr T
    trace() const
    {
        return m[0][0] + m[1][1] + m[2][2];
    }

    constexpr T
    determinant() const
    {
        return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
               m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
               m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    }

    /**
     * Matrix inverse via the adjugate. The caller must ensure the
     * matrix is nonsingular (rotations always are).
     */
    constexpr Mat3
    inverse() const
    {
        const T det = determinant();
        const T inv_det = T(1) / det;
        Mat3 inv;
        inv.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        inv.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        inv.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        inv.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        inv.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        inv.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        inv.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        inv.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        inv.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        return inv;
    }

    template <typename U>
    constexpr Mat3<U>
    cast() const
    {
        Mat3<U> out;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                out.m[r][c] = static_cast<U>(m[r][c]);
        return out;
    }
};

/**
 * Row-major 4x4 matrix, used as a rigid-body (or projective) transform.
 */
template <typename T>
struct Mat4
{
    T m[4][4] = {{T(1), T(0), T(0), T(0)},
                 {T(0), T(1), T(0), T(0)},
                 {T(0), T(0), T(1), T(0)},
                 {T(0), T(0), T(0), T(1)}};

    constexpr Mat4() = default;

    static constexpr Mat4 identity() { return Mat4(); }

    /** Compose from rotation block and translation column. */
    static constexpr Mat4
    fromRt(const Mat3<T> &rot, const Vec3<T> &t)
    {
        Mat4 a;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                a.m[r][c] = rot.m[r][c];
        a.m[0][3] = t.x;
        a.m[1][3] = t.y;
        a.m[2][3] = t.z;
        return a;
    }

    /** Pure-translation transform. */
    static constexpr Mat4
    translation(const Vec3<T> &t)
    {
        return fromRt(Mat3<T>::identity(), t);
    }

    constexpr T &operator()(size_t r, size_t c) { return m[r][c]; }
    constexpr const T &operator()(size_t r, size_t c) const { return m[r][c]; }

    /** Upper-left 3x3 block. */
    constexpr Mat3<T>
    rotation() const
    {
        Mat3<T> rot;
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                rot.m[r][c] = m[r][c];
        return rot;
    }

    /** Last column's first three entries. */
    constexpr Vec3<T>
    translationPart() const
    {
        return {m[0][3], m[1][3], m[2][3]};
    }

    /** Transform a point (applies rotation and translation). */
    constexpr Vec3<T>
    transformPoint(const Vec3<T> &p) const
    {
        return {
            m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + m[0][3],
            m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + m[1][3],
            m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + m[2][3],
        };
    }

    /** Transform a direction (rotation only). */
    constexpr Vec3<T>
    transformDir(const Vec3<T> &d) const
    {
        return {
            m[0][0] * d.x + m[0][1] * d.y + m[0][2] * d.z,
            m[1][0] * d.x + m[1][1] * d.y + m[1][2] * d.z,
            m[2][0] * d.x + m[2][1] * d.y + m[2][2] * d.z,
        };
    }

    constexpr Mat4
    operator*(const Mat4 &o) const
    {
        Mat4 out;
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
                T acc = T(0);
                for (int k = 0; k < 4; ++k)
                    acc += m[r][k] * o.m[k][c];
                out.m[r][c] = acc;
            }
        }
        return out;
    }

    /**
     * Inverse assuming this is a rigid transform (orthonormal rotation
     * block plus translation); O(1) and exact up to rounding.
     */
    constexpr Mat4
    rigidInverse() const
    {
        const Mat3<T> rt = rotation().transposed();
        const Vec3<T> t = translationPart();
        return fromRt(rt, -(rt * t));
    }

    template <typename U>
    constexpr Mat4<U>
    cast() const
    {
        Mat4<U> out;
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                out.m[r][c] = static_cast<U>(m[r][c]);
        return out;
    }
};

using Mat3f = Mat3<float>;
using Mat3d = Mat3<double>;
using Mat4f = Mat4<float>;
using Mat4d = Mat4<double>;

} // namespace slambench::math

#endif // SLAMBENCH_MATH_MAT_HPP
