#ifndef SLAMBENCH_MATH_AABB_HPP
#define SLAMBENCH_MATH_AABB_HPP

/**
 * @file
 * Axis-aligned bounding box and ray/box intersection (the classic
 * slab test). Shared by the raycast kernels, which clip every ray to
 * the TSDF volume before marching.
 */

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "math/vec.hpp"

namespace slambench::math {

/** Axis-aligned box spanning [lo, hi] in each dimension. */
struct Aabb
{
    Vec3f lo;
    Vec3f hi;
};

/**
 * Intersect the ray origin + t * dir with @p box (slab test).
 *
 * Directions with a near-zero component fall back to a containment
 * check on that axis, so axis-aligned rays are handled exactly.
 *
 * @param box Box to test against.
 * @param origin Ray origin.
 * @param dir Ray direction (need not be unit length).
 * @param[out] t_near Entry parameter (may be negative: origin inside).
 * @param[out] t_far Exit parameter.
 * @return false when the ray misses the box or the box is entirely
 *         behind the origin (t_far <= 0).
 */
inline bool
intersectRayAabb(const Aabb &box, const Vec3f &origin, const Vec3f &dir,
                 float &t_near, float &t_far)
{
    t_near = -1e30f;
    t_far = 1e30f;
    for (int axis = 0; axis < 3; ++axis) {
        const float o = origin[static_cast<size_t>(axis)];
        const float d = dir[static_cast<size_t>(axis)];
        const float l = box.lo[static_cast<size_t>(axis)];
        const float h = box.hi[static_cast<size_t>(axis)];
        if (std::abs(d) < 1e-9f) {
            if (o < l || o > h)
                return false;
            continue;
        }
        float t0 = (l - o) / d;
        float t1 = (h - o) / d;
        if (t0 > t1)
            std::swap(t0, t1);
        t_near = std::max(t_near, t0);
        t_far = std::min(t_far, t1);
    }
    return t_near <= t_far && t_far > 0.0f;
}

} // namespace slambench::math

#endif // SLAMBENCH_MATH_AABB_HPP
