#ifndef SLAMBENCH_MATH_CAMERA_HPP
#define SLAMBENCH_MATH_CAMERA_HPP

/**
 * @file
 * Pinhole camera intrinsics with projection/back-projection.
 *
 * Convention: camera frame has +Z forward along the optical axis,
 * +X right, +Y down; pixel (0, 0) is the top-left corner and pixel
 * centers sit at integer + 0.5 offsets (so fx/fy/cx/cy follow the
 * usual computer-vision definition).
 */

#include <cmath>
#include <cstddef>

#include "math/vec.hpp"

namespace slambench::math {

/** Pinhole intrinsics (no distortion, as in ICL-NUIM / SLAMBench). */
struct CameraIntrinsics
{
    float fx = 0.0f; ///< Focal length in pixels, horizontal.
    float fy = 0.0f; ///< Focal length in pixels, vertical.
    float cx = 0.0f; ///< Principal point x, pixels.
    float cy = 0.0f; ///< Principal point y, pixels.
    size_t width = 0;  ///< Image width in pixels.
    size_t height = 0; ///< Image height in pixels.

    /**
     * Intrinsics with a given horizontal field of view.
     *
     * @param width Image width in pixels.
     * @param height Image height in pixels.
     * @param hfov_rad Horizontal field of view in radians.
     */
    static CameraIntrinsics
    fromFov(size_t width, size_t height, float hfov_rad)
    {
        CameraIntrinsics k;
        k.width = width;
        k.height = height;
        k.fx = static_cast<float>(width) /
               (2.0f * std::tan(hfov_rad / 2.0f));
        k.fy = k.fx;
        k.cx = static_cast<float>(width) / 2.0f;
        k.cy = static_cast<float>(height) / 2.0f;
        return k;
    }

    /**
     * Intrinsics for an image downscaled by an integer @p ratio;
     * used to implement the compute-size-ratio parameter.
     */
    CameraIntrinsics
    scaled(size_t ratio) const
    {
        CameraIntrinsics k;
        const float r = static_cast<float>(ratio);
        k.width = width / ratio;
        k.height = height / ratio;
        k.fx = fx / r;
        k.fy = fy / r;
        k.cx = cx / r;
        k.cy = cy / r;
        return k;
    }

    /**
     * Project a camera-frame point to pixel coordinates.
     *
     * @param p Point with p.z > 0.
     * @return (u, v) in pixels.
     */
    Vec2f
    project(const Vec3f &p) const
    {
        return {fx * p.x / p.z + cx, fy * p.y / p.z + cy};
    }

    /**
     * Back-project pixel (u, v) at depth @p depth into the camera
     * frame.
     *
     * @param u Pixel column (may be fractional).
     * @param v Pixel row (may be fractional).
     * @param depth Z coordinate along the optical axis, meters.
     */
    Vec3f
    backProject(float u, float v, float depth) const
    {
        return {(u - cx) / fx * depth, (v - cy) / fy * depth, depth};
    }

    /**
     * Unit ray direction through pixel (u, v) in the camera frame.
     */
    Vec3f
    rayDir(float u, float v) const
    {
        return Vec3f{(u - cx) / fx, (v - cy) / fy, 1.0f}.normalized();
    }
};

} // namespace slambench::math

#endif // SLAMBENCH_MATH_CAMERA_HPP
