#ifndef SLAMBENCH_MATH_SOLVE_HPP
#define SLAMBENCH_MATH_SOLVE_HPP

/**
 * @file
 * Small dense linear-algebra routines: the 6x6 LDLT solve used by the
 * ICP normal equations, a Jacobi eigen-solver for small symmetric
 * matrices, and Horn's closed-form best-rotation (used by trajectory
 * alignment).
 */

#include <array>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace slambench::math {

/**
 * Solve A x = b for symmetric positive-definite 6x6 A via LDLT.
 *
 * @param a Row-major symmetric matrix.
 * @param b Right-hand side.
 * @param[out] x Solution on success; unspecified on failure.
 * @return false when a pivot is (numerically) non-positive.
 */
bool solveLdlt6(const std::array<double, 36> &a,
                const std::array<double, 6> &b,
                std::array<double, 6> &x);

/** Eigen-decomposition result of a small symmetric matrix. */
template <int N>
struct EigenSym
{
    /** Eigenvalues in descending order. */
    std::array<double, N> values{};
    /** eigenvectors[i] is the unit eigenvector for values[i]. */
    std::array<std::array<double, N>, N> vectors{};
};

/**
 * Cyclic Jacobi eigen-decomposition of a symmetric matrix.
 *
 * @param a Row-major symmetric matrix (only the given values are
 *          read; symmetry is assumed, not checked).
 * @return eigenvalues (descending) and matching unit eigenvectors.
 */
EigenSym<3> eigenSym3(const std::array<double, 9> &a);

/** @copydoc eigenSym3 */
EigenSym<4> eigenSym4(const std::array<double, 16> &a);

/**
 * Best proper rotation (Horn 1987) mapping a source point set onto a
 * target set: given the cross-covariance
 * cov = sum_i (p_i - p_mean) (q_i - q_mean)^T of centered
 * source/target correspondences (p = source, q = target), returns
 * the R minimizing sum_i |R p_i - q_i|^2 over rotations.
 *
 * @param cov Cross-covariance, source x target.
 * @return the optimal rotation (always proper, det = +1).
 */
Mat3d hornRotation(const Mat3d &cov);

} // namespace slambench::math

#endif // SLAMBENCH_MATH_SOLVE_HPP
