#ifndef SLAMBENCH_MATH_SE3_HPP
#define SLAMBENCH_MATH_SE3_HPP

/**
 * @file
 * Rotations and rigid-body transforms: quaternions, axis-angle,
 * so(3)/se(3) exponential and logarithm maps, and camera look-at.
 *
 * The ICP solver updates poses with se(3) twists; the trajectory
 * generator interpolates ground-truth poses with quaternion slerp.
 */

#include <cmath>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace slambench::math {

/** Unit quaternion (w, x, y, z) representing a rotation. */
template <typename T>
struct Quat
{
    T w = T(1);
    T x = T(0);
    T y = T(0);
    T z = T(0);

    constexpr Quat() = default;
    constexpr Quat(T w_, T x_, T y_, T z_) : w(w_), x(x_), y(y_), z(z_) {}

    constexpr T
    dot(const Quat &o) const
    {
        return w * o.w + x * o.x + y * o.y + z * o.z;
    }

    T norm() const { return std::sqrt(dot(*this)); }

    Quat
    normalized() const
    {
        const T n = norm();
        if (n <= T(0))
            return Quat();
        return {w / n, x / n, y / n, z / n};
    }

    constexpr Quat conjugate() const { return {w, -x, -y, -z}; }

    constexpr Quat
    operator*(const Quat &o) const
    {
        return {
            w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w,
        };
    }

    /** Rotation matrix of this (assumed unit) quaternion. */
    Mat3<T>
    toMatrix() const
    {
        Mat3<T> r;
        const T xx = x * x, yy = y * y, zz = z * z;
        const T xy = x * y, xz = x * z, yz = y * z;
        const T wx = w * x, wy = w * y, wz = w * z;
        r(0, 0) = T(1) - T(2) * (yy + zz);
        r(0, 1) = T(2) * (xy - wz);
        r(0, 2) = T(2) * (xz + wy);
        r(1, 0) = T(2) * (xy + wz);
        r(1, 1) = T(1) - T(2) * (xx + zz);
        r(1, 2) = T(2) * (yz - wx);
        r(2, 0) = T(2) * (xz - wy);
        r(2, 1) = T(2) * (yz + wx);
        r(2, 2) = T(1) - T(2) * (xx + yy);
        return r;
    }

    /** Quaternion of the rotation matrix @p r (Shepperd's method). */
    static Quat
    fromMatrix(const Mat3<T> &r)
    {
        Quat q;
        const T tr = r.trace();
        if (tr > T(0)) {
            const T s = std::sqrt(tr + T(1)) * T(2);
            q.w = s / T(4);
            q.x = (r(2, 1) - r(1, 2)) / s;
            q.y = (r(0, 2) - r(2, 0)) / s;
            q.z = (r(1, 0) - r(0, 1)) / s;
        } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
            const T s =
                std::sqrt(T(1) + r(0, 0) - r(1, 1) - r(2, 2)) * T(2);
            q.w = (r(2, 1) - r(1, 2)) / s;
            q.x = s / T(4);
            q.y = (r(0, 1) + r(1, 0)) / s;
            q.z = (r(0, 2) + r(2, 0)) / s;
        } else if (r(1, 1) > r(2, 2)) {
            const T s =
                std::sqrt(T(1) + r(1, 1) - r(0, 0) - r(2, 2)) * T(2);
            q.w = (r(0, 2) - r(2, 0)) / s;
            q.x = (r(0, 1) + r(1, 0)) / s;
            q.y = s / T(4);
            q.z = (r(1, 2) + r(2, 1)) / s;
        } else {
            const T s =
                std::sqrt(T(1) + r(2, 2) - r(0, 0) - r(1, 1)) * T(2);
            q.w = (r(1, 0) - r(0, 1)) / s;
            q.x = (r(0, 2) + r(2, 0)) / s;
            q.y = (r(1, 2) + r(2, 1)) / s;
            q.z = s / T(4);
        }
        return q.normalized();
    }

    /** Rotation of angle |axis*angle| around @p axis (unit). */
    static Quat
    fromAxisAngle(const Vec3<T> &axis, T angle)
    {
        const T half = angle / T(2);
        const T s = std::sin(half);
        const Vec3<T> a = axis.normalized();
        return {std::cos(half), a.x * s, a.y * s, a.z * s};
    }
};

/**
 * Spherical linear interpolation between unit quaternions.
 *
 * @param a Start rotation (t = 0).
 * @param b End rotation (t = 1).
 * @param t Interpolation parameter; not clamped.
 */
template <typename T>
Quat<T>
slerp(const Quat<T> &a, Quat<T> b, T t)
{
    T cos_theta = a.dot(b);
    if (cos_theta < T(0)) {
        // Take the short arc.
        b = {-b.w, -b.x, -b.y, -b.z};
        cos_theta = -cos_theta;
    }
    if (cos_theta > T(0.9995)) {
        // Nearly parallel: fall back to nlerp.
        Quat<T> out{a.w + (b.w - a.w) * t, a.x + (b.x - a.x) * t,
                    a.y + (b.y - a.y) * t, a.z + (b.z - a.z) * t};
        return out.normalized();
    }
    const T theta = std::acos(cos_theta);
    const T sin_theta = std::sin(theta);
    const T wa = std::sin((T(1) - t) * theta) / sin_theta;
    const T wb = std::sin(t * theta) / sin_theta;
    return Quat<T>{wa * a.w + wb * b.w, wa * a.x + wb * b.x,
                   wa * a.y + wb * b.y, wa * a.z + wb * b.z}
        .normalized();
}

/** Rotation about the X axis by @p angle radians. */
template <typename T>
Mat3<T>
rotationX(T angle)
{
    const T c = std::cos(angle), s = std::sin(angle);
    Mat3<T> r;
    r(1, 1) = c; r(1, 2) = -s;
    r(2, 1) = s; r(2, 2) = c;
    return r;
}

/** Rotation about the Y axis by @p angle radians. */
template <typename T>
Mat3<T>
rotationY(T angle)
{
    const T c = std::cos(angle), s = std::sin(angle);
    Mat3<T> r;
    r(0, 0) = c;  r(0, 2) = s;
    r(2, 0) = -s; r(2, 2) = c;
    return r;
}

/** Rotation about the Z axis by @p angle radians. */
template <typename T>
Mat3<T>
rotationZ(T angle)
{
    const T c = std::cos(angle), s = std::sin(angle);
    Mat3<T> r;
    r(0, 0) = c; r(0, 1) = -s;
    r(1, 0) = s; r(1, 1) = c;
    return r;
}

/** so(3) exponential: rotation matrix of the rotation vector @p w. */
template <typename T>
Mat3<T>
expSo3(const Vec3<T> &w)
{
    const T theta = w.norm();
    const Mat3<T> wx = Mat3<T>::skew(w);
    if (theta < T(1e-8)) {
        // Second-order Taylor expansion near the identity.
        return Mat3<T>::identity() + wx + wx * wx * T(0.5);
    }
    const T a = std::sin(theta) / theta;
    const T b = (T(1) - std::cos(theta)) / (theta * theta);
    return Mat3<T>::identity() + wx * a + wx * wx * b;
}

/** so(3) logarithm: rotation vector of the rotation matrix @p r. */
template <typename T>
Vec3<T>
logSo3(const Mat3<T> &r)
{
    const T cos_theta =
        std::max(T(-1), std::min(T(1), (r.trace() - T(1)) / T(2)));
    const T theta = std::acos(cos_theta);
    const Vec3<T> axis_raw{r(2, 1) - r(1, 2), r(0, 2) - r(2, 0),
                           r(1, 0) - r(0, 1)};
    if (theta < T(1e-8))
        return axis_raw * T(0.5);
    if (theta > T(M_PI) - T(1e-5)) {
        // Near pi the off-diagonal formula degenerates; recover the
        // axis from the diagonal of R = I + 2*sin^2(theta/2)*(aa^T - I).
        Vec3<T> axis;
        axis.x = std::sqrt(std::max(T(0), (r(0, 0) + T(1)) / T(2)));
        axis.y = std::sqrt(std::max(T(0), (r(1, 1) + T(1)) / T(2)));
        axis.z = std::sqrt(std::max(T(0), (r(2, 2) + T(1)) / T(2)));
        // Fix signs using the largest component.
        if (axis.x >= axis.y && axis.x >= axis.z) {
            if (r(0, 1) + r(1, 0) < T(0)) axis.y = -axis.y;
            if (r(0, 2) + r(2, 0) < T(0)) axis.z = -axis.z;
        } else if (axis.y >= axis.z) {
            if (r(0, 1) + r(1, 0) < T(0)) axis.x = -axis.x;
            if (r(1, 2) + r(2, 1) < T(0)) axis.z = -axis.z;
        } else {
            if (r(0, 2) + r(2, 0) < T(0)) axis.x = -axis.x;
            if (r(1, 2) + r(2, 1) < T(0)) axis.y = -axis.y;
        }
        return axis.normalized() * theta;
    }
    return axis_raw * (theta / (T(2) * std::sin(theta)));
}

/**
 * se(3) exponential.
 *
 * @param v Translational part of the twist.
 * @param w Rotational part of the twist.
 * @return the rigid transform exp([w]x, v).
 */
template <typename T>
Mat4<T>
expSe3(const Vec3<T> &v, const Vec3<T> &w)
{
    const T theta = w.norm();
    const Mat3<T> rot = expSo3(w);
    Mat3<T> jl; // left Jacobian of SO(3)
    const Mat3<T> wx = Mat3<T>::skew(w);
    if (theta < T(1e-8)) {
        jl = Mat3<T>::identity() + wx * T(0.5);
    } else {
        const T t2 = theta * theta;
        const T b = (T(1) - std::cos(theta)) / t2;
        const T c = (theta - std::sin(theta)) / (t2 * theta);
        jl = Mat3<T>::identity() + wx * b + wx * wx * c;
    }
    return Mat4<T>::fromRt(rot, jl * v);
}

/**
 * se(3) logarithm.
 *
 * @param pose Rigid transform.
 * @param[out] v Translational twist component.
 * @param[out] w Rotational twist component.
 */
template <typename T>
void
logSe3(const Mat4<T> &pose, Vec3<T> &v, Vec3<T> &w)
{
    w = logSo3(pose.rotation());
    const T theta = w.norm();
    const Mat3<T> wx = Mat3<T>::skew(w);
    Mat3<T> jl_inv;
    if (theta < T(1e-8)) {
        jl_inv = Mat3<T>::identity() + wx * T(-0.5);
    } else {
        const T half = theta / T(2);
        const T cot = T(1) / std::tan(half);
        const T a = (T(1) - half * cot) / (theta * theta);
        jl_inv = Mat3<T>::identity() + wx * T(-0.5) + wx * wx * a;
    }
    v = jl_inv * pose.translationPart();
}

/**
 * Camera pose looking from @p eye toward @p target (camera-to-world).
 *
 * The camera frame follows the usual computer-vision convention:
 * +Z forward, +X right, +Y down.
 *
 * @param eye Camera position in world coordinates.
 * @param target Point the optical axis passes through.
 * @param up_hint Approximate world up direction (not the camera's -Y).
 */
template <typename T>
Mat4<T>
lookAt(const Vec3<T> &eye, const Vec3<T> &target, const Vec3<T> &up_hint)
{
    const Vec3<T> forward = (target - eye).normalized();
    Vec3<T> right = forward.cross(up_hint);
    if (right.squaredNorm() < T(1e-12)) {
        // Forward is parallel to the up hint; pick any perpendicular.
        right = forward.cross(Vec3<T>{T(1), T(0), T(0)});
        if (right.squaredNorm() < T(1e-12))
            right = forward.cross(Vec3<T>{T(0), T(1), T(0)});
    }
    right = right.normalized();
    const Vec3<T> down = forward.cross(right).normalized();
    return Mat4<T>::fromRt(Mat3<T>::fromCols(right, down, forward), eye);
}

} // namespace slambench::math

#endif // SLAMBENCH_MATH_SE3_HPP
